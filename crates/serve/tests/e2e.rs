//! End-to-end serving tests: a real daemon on an ephemeral port, driven
//! through the real [`Client`] — the same code path `extrap client` and
//! the load generator use.

use extrap_core::{machine, Extrapolator, RecordMode, SharedTraceCache, SweepGrid};
use extrap_proto::{ErrorCode, JobId, Request, Response, SweepSpec};
use extrap_serve::client::{Client, ClientError};
use extrap_serve::{ServeConfig, Server};
use extrap_time::{DurationNs, TimeNs};
use extrap_workloads::{Bench, Scale};

fn start(config: ServeConfig) -> Server {
    Server::start(config.with_addr("127.0.0.1:0")).expect("start server")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string()).expect("connect")
}

fn spec(benches: &[&str], procs: &[u32], scale: &str) -> SweepSpec {
    SweepSpec {
        benches: benches.iter().map(|s| s.to_string()).collect(),
        procs: procs.to_vec(),
        scale: scale.to_string(),
        params: String::new(),
    }
}

/// A tiny translated trace set as wire bytes (`XTPS` image).
fn tiny_set_bytes(n_threads: usize) -> Vec<u8> {
    let mut p = extrap_trace::PhaseProgram::new(n_threads);
    p.push_uniform_phase(DurationNs::from_us(150.0));
    p.push_uniform_phase(DurationNs::from_us(60.0));
    let set = extrap_trace::translate(&p.record(), Default::default()).expect("translate");
    extrap_trace::format::encode_set(&set)
}

#[test]
fn served_sweep_csv_is_byte_identical_to_in_process_sweep() {
    let server = start(ServeConfig::default());
    let mut client = connect(&server);
    let benches = ["poisson", "grid"];
    let procs = [1u32, 2, 4, 8];
    let rows = client
        .sweep(spec(&benches, &procs, "tiny"))
        .expect("served sweep");

    // Render exactly like `extrap sweep --csv` does.
    let mut served = String::from("bench,procs,time_ms\n");
    for r in &rows {
        let ms = TimeNs(r.exec_time_ns).as_ms();
        served.push_str(&format!("{},{},{ms:.6}\n", r.bench, r.procs));
    }

    // The reference is the same pipeline cmd_sweep runs in-process.
    let mut params = machine::default_distributed();
    params.record_mode = RecordMode::MetricsOnly;
    let resolved: Vec<Bench> = benches
        .iter()
        .map(|name| {
            Bench::all()
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(name))
                .unwrap()
        })
        .collect();
    let grid = SweepGrid::new()
        .workloads(resolved.iter().map(|b| b.name().to_string()))
        .procs(procs.iter().map(|&n| n as usize))
        .params(params)
        .jobs();
    let cache = SharedTraceCache::new();
    let results = extrap_core::sweep(&grid, 4, &cache, |(name, n)| {
        let bench = Bench::all()
            .into_iter()
            .find(|b| b.name() == name.as_str())
            .unwrap();
        extrap_trace::translate(&bench.trace(*n, Scale::Tiny), Default::default())
    });
    let mut local = String::from("bench,procs,time_ms\n");
    for (job, result) in grid.iter().zip(results) {
        let ms = result.expect("local sweep").exec_time().as_ms();
        local.push_str(&format!("{},{},{ms:.6}\n", job.key.0, job.key.1));
    }

    assert_eq!(served, local, "served CSV must match in-process CSV");
    server.shutdown_and_join();
}

#[test]
fn submit_and_simulate_matches_in_process_extrapolator() {
    let server = start(ServeConfig::default());
    let mut client = connect(&server);
    let bytes = tiny_set_bytes(4);
    let (trace, n_threads, resident) = client.submit_trace("tiny", bytes.clone()).unwrap();
    assert_eq!(n_threads, 4);
    assert!(resident > 0);

    let served = client.simulate(trace, "").unwrap();

    let set = extrap_trace::format::decode_set(&bytes).unwrap();
    let mut params = machine::default_distributed();
    params.record_mode = RecordMode::MetricsOnly;
    let local = Extrapolator::new(params).run(&set).unwrap();

    assert_eq!(served.exec_time_ns, local.exec_time().as_ns());
    assert_eq!(served.n_procs as usize, local.n_procs);
    assert_eq!(served.barriers, local.barriers as u64);
    assert_eq!(served.messages, local.network.messages);
    assert_eq!(served.per_thread.len(), local.per_thread.len());
    for (row, b) in served.per_thread.iter().zip(&local.per_thread) {
        assert_eq!(row.end_time_ns, b.end_time.0);
        assert_eq!(row.barrier_wait_ns, b.barrier_wait.0);
    }
    server.shutdown_and_join();
}

#[test]
fn submitting_a_program_trace_translates_server_side() {
    let server = start(ServeConfig::default());
    let mut client = connect(&server);
    let trace = Bench::Poisson.trace(2, Scale::Tiny);
    let bytes = extrap_trace::format::encode_program(&trace);
    let (id, n_threads, _) = client.submit_trace("poisson-xtrp", bytes).unwrap();
    assert_eq!(n_threads, 2);
    let pred = client.simulate(id, "").unwrap();
    assert!(pred.exec_time_ns > 0);
    let stats = client.stats().unwrap();
    assert!(stats.translations >= 1, "XTRP submit runs a translation");
    server.shutdown_and_join();
}

#[test]
fn bad_requests_are_rejected_with_typed_errors() {
    let server = start(ServeConfig::default());
    let mut client = connect(&server);

    let e = client.sweep(spec(&["nonesuch"], &[1], "")).unwrap_err();
    assert!(
        matches!(e, ClientError::Server { code: ErrorCode::BadRequest, ref detail } if detail.contains("nonesuch")),
        "got {e:?}"
    );

    let e = client
        .sweep(spec(&["poisson"], &[1], "galactic"))
        .unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    let e = client.simulate(extrap_proto::TraceId(999), "").unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::UnknownTrace,
            ..
        }
    ));

    let e = client
        .submit_trace("garbage", b"not a trace".to_vec())
        .unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    // Fetching a never-issued job is UnknownJob, not a hang.
    match client
        .round(&Request::FetchResult {
            job: JobId(424242),
            wait_ms: 0,
        })
        .unwrap_err()
    {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
        other => panic!("expected server error, got {other:?}"),
    }
    server.shutdown_and_join();
}

#[test]
fn evicted_traces_are_gone_and_reported() {
    let server = start(ServeConfig::default());
    let mut client = connect(&server);
    let (id, _, resident) = client.submit_trace("t", tiny_set_bytes(2)).unwrap();
    let freed = client.evict(id).unwrap();
    assert_eq!(freed, resident);
    let e = client.simulate(id, "").unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::UnknownTrace,
            ..
        }
    ));
    let e = client.evict(id).unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::UnknownTrace,
            ..
        }
    ));
    server.shutdown_and_join();
}

#[test]
fn memory_budget_evicts_lru_submitted_traces() {
    // A budget small enough that the second submit must push out the
    // first (each tiny set is a few KiB).
    let config = ServeConfig {
        mem_budget_bytes: 1,
        ..ServeConfig::default()
    };
    let server = start(config);
    let mut client = connect(&server);
    let (first, _, _) = client.submit_trace("first", tiny_set_bytes(2)).unwrap();
    let _ = client.submit_trace("second", tiny_set_bytes(3)).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.evictions >= 1, "budget of 1 byte must evict");
    assert!(stats.traces_resident <= 1);
    let e = client.simulate(first, "").unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::UnknownTrace,
            ..
        }
    ));
    server.shutdown_and_join();
}

#[test]
fn concurrent_identical_sweeps_coalesce_and_agree() {
    let config = ServeConfig {
        batch_window: std::time::Duration::from_millis(30),
        workers: 2,
        ..ServeConfig::default()
    };
    let server = start(config);
    let addr = server.local_addr().to_string();

    const CLIENTS: usize = 12;
    let rows: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    c.sweep(spec(&["poisson"], &[1, 2, 4], "tiny")).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &rows[1..] {
        assert_eq!(r, &rows[0], "coalesced and solo sweeps must agree");
    }

    let mut client = connect(&server);
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.sweep_batches + stats.coalesced_sweeps,
        CLIENTS as u64,
        "every sweep either started a batch or rode one"
    );
    assert_eq!(stats.jobs_done, CLIENTS as u64);
    assert_eq!(stats.jobs_failed, 0);
    server.shutdown_and_join();
}

#[test]
fn shutdown_drains_then_refuses_new_work() {
    let server = start(ServeConfig::default());
    let mut a = connect(&server);
    let mut b = connect(&server);

    // A job accepted before the drain still completes and delivers.
    let accepted = match a
        .round(&Request::Sweep(spec(&["poisson"], &[1, 2], "tiny")))
        .unwrap()
    {
        Response::Accepted { job } => job,
        other => panic!("expected Accepted, got {other:?}"),
    };
    b.shutdown().expect("shutdown handshake");

    // New work is refused while the drain runs.
    let e = b.sweep(spec(&["poisson"], &[1], "tiny")).unwrap_err();
    assert!(
        matches!(
            e,
            ClientError::Server {
                code: ErrorCode::ShuttingDown,
                ..
            }
        ),
        "got {e:?}"
    );

    // ...but the pre-drain job's result is still fetchable.
    let mut rows = None;
    for _ in 0..100 {
        match a
            .round(&Request::FetchResult {
                job: accepted,
                wait_ms: 500,
            })
            .unwrap()
        {
            Response::Pending { .. } => continue,
            Response::SweepRows(r) => {
                rows = Some(r);
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(rows.expect("drained result").len(), 2);
    drop(a);
    drop(b);
    server.join();
}

#[test]
fn served_phases_report_is_byte_identical_to_local_stats() {
    let server = start(ServeConfig::default());
    let mut client = connect(&server);
    // A registry bench with real barrier repetition, so the epoch
    // clustering section has content worth comparing.
    let set = extrap_trace::translate(&Bench::Grid.trace(4, Scale::Tiny), Default::default())
        .expect("translate");
    let bytes = extrap_trace::format::encode_set(&set);
    let (trace, _, _) = client.submit_trace("grid-tiny", bytes).unwrap();

    for phases in [false, true] {
        let opts = extrap_trace::ClusterOptions {
            max_clusters: 64,
            tolerance: 0.05,
        };
        let local = extrap_trace::render_stats_report(&set, phases, &opts);
        let served = client.phases(trace, phases, 64, 0.05).unwrap();
        assert_eq!(
            served, local,
            "phases={phases}: served text must match local"
        );
        assert!(!served.is_empty());
    }
    server.shutdown_and_join();
}

#[test]
fn served_analyze_is_byte_identical_to_local_render() {
    let server = start(ServeConfig::default());
    let mut client = connect(&server);
    let set = extrap_trace::translate(&Bench::Grid.trace(4, Scale::Tiny), Default::default())
        .expect("translate");
    let bytes = extrap_trace::format::encode_set(&set);
    let (trace, _, _) = client.submit_trace("grid-tiny", bytes).unwrap();

    let program = extrap_core::CompiledProgram::compile(&set).expect("compile");
    let mut params = machine::default_distributed();
    params.record_mode = RecordMode::MetricsOnly;
    let analysis = extrap_analyze::analyze(&program, &params).expect("analyze");

    for (format, name) in [
        (extrap_analyze::Format::Text, "text"),
        (extrap_analyze::Format::Json, "json"),
        (extrap_analyze::Format::Csv, "csv"),
    ] {
        let local = extrap_analyze::render("grid-tiny", &analysis, &[], format);
        let served = client.analyze(trace, "", name).unwrap();
        assert_eq!(served, local, "{name}: served render must match local");
    }
    // Empty format defaults to text.
    assert_eq!(
        client.analyze(trace, "", "").unwrap(),
        extrap_analyze::render("grid-tiny", &analysis, &[], extrap_analyze::Format::Text)
    );

    // Typed errors: bad format, then unknown trace.
    let e = client.analyze(trace, "", "yaml").unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::BadRequest,
            ..
        }
    ));
    client.evict(trace).unwrap();
    let e = client.analyze(trace, "", "text").unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::UnknownTrace,
            ..
        }
    ));
    let e = client.phases(trace, true, 64, 0.05).unwrap_err();
    assert!(matches!(
        e,
        ClientError::Server {
            code: ErrorCode::UnknownTrace,
            ..
        }
    ));
    server.shutdown_and_join();
}
