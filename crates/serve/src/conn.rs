//! The TCP surface: the accept loop and the per-connection frame loop.

use crate::state::Service;
use extrap_proto::{
    decode_request, encode_response, read_frame, write_frame, ErrorCode, Response, MAX_FRAME_LEN,
};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// How often an idle connection (or the accept loop) re-checks server
/// state.  Short enough that shutdown feels immediate, long enough that
/// idle polling costs nothing.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Accepts connections until shutdown begins.  The listener runs
/// nonblocking so the loop can observe the drain flag between accepts.
pub(crate) fn accept_loop(listener: TcpListener, service: &Arc<Service>) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while !service.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if !service.try_open_conn() {
                    refuse(stream, "connection limit reached; retry later");
                    continue;
                }
                let service = Arc::clone(service);
                std::thread::Builder::new()
                    .name("extrap-serve-conn".into())
                    .spawn(move || {
                        handle(stream, &service);
                        service.conn_closed();
                    })
                    .expect("spawn connection thread");
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(IDLE_POLL),
            // Transient accept errors (EMFILE, resets): back off, keep
            // serving the connections we already have.
            Err(_) => std::thread::sleep(IDLE_POLL),
        }
    }
}

/// Best-effort `Busy` answer for a connection refused at the limit.
fn refuse(mut stream: TcpStream, detail: &str) {
    let payload = encode_response(&Response::Error {
        code: ErrorCode::Busy,
        detail: detail.to_string(),
    });
    let _ = write_frame(&mut stream, &payload);
}

/// One connection's request/response loop.
///
/// Idle polling uses `peek` under a short read timeout so a timeout can
/// never split a half-read frame: the frame itself is only read once at
/// least one byte is known to be waiting, under the full request
/// timeout.  On an idle tick after the server has drained its shutdown,
/// the connection closes once this session has no undelivered results.
fn handle(mut stream: TcpStream, service: &Arc<Service>) {
    let session = service.session();
    let _ = stream.set_nodelay(true);
    loop {
        if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
            return;
        }
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if service.is_shutting_down() && service.drained() && !session.has_unfetched() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if stream
            .set_read_timeout(Some(service.config().request_timeout))
            .is_err()
        {
            return;
        }
        let frame = match read_frame(&mut stream, MAX_FRAME_LEN) {
            Ok(Some(frame)) => frame,
            // Clean EOF at a frame boundary, or a framing violation the
            // stream cannot recover from — either way the conversation
            // is over.
            Ok(None) | Err(_) => return,
        };
        // A frame that arrived intact but decodes to garbage is
        // answered (the stream is still in sync), not dropped.
        let response = match decode_request(&frame) {
            Ok(req) => session.handle(req),
            Err(e) => Response::Error {
                code: ErrorCode::BadRequest,
                detail: e.to_string(),
            },
        };
        if write_frame(&mut stream, &encode_response(&response)).is_err() {
            return;
        }
    }
}
