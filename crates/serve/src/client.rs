//! The blocking protocol client.
//!
//! This is the one client implementation in the tree: `extrap client`,
//! the load-generator bench, and the end-to-end tests all drive servers
//! through it, so a protocol change breaks loudly in one place.

use extrap_proto::{
    decode_response, encode_request, read_frame, write_frame, ErrorCode, JobId, PredictionSummary,
    ProtoError, Request, Response, ServerStats, SweepRow, SweepSpec, TraceId, MAX_FRAME_LEN,
};
use std::fmt;
use std::io;
use std::net::TcpStream;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Proto(ProtoError),
    /// The server answered with [`Response::Error`].
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server answered with the wrong response kind, or hung up
    /// mid-conversation.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server { code, detail } => write!(f, "server error [{code}]: {detail}"),
            ClientError::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Proto(ProtoError::Io(e))
    }
}

impl ClientError {
    /// Whether this is the server's `Busy` backpressure answer — the
    /// one error a well-behaved client retries after a pause.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Busy,
                ..
            }
        )
    }
}

fn unexpected(wanted: &str, got: Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// A blocking connection to an `extrap-serve` daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// One raw request/response exchange.  Server-side
    /// [`Response::Error`]s come back as `Ok` — use [`round`](Client::round)
    /// to surface them as [`ClientError::Server`].
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let frame = read_frame(&mut self.stream, MAX_FRAME_LEN)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        Ok(decode_response(&frame)?)
    }

    /// [`request`](Client::request) with error responses lifted into
    /// [`ClientError::Server`].
    pub fn round(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.request(req)? {
            Response::Error { code, detail } => Err(ClientError::Server { code, detail }),
            other => Ok(other),
        }
    }

    /// Uploads a trace image (`XTRP` or `XTPS` bytes); returns the
    /// handle plus `(n_threads, resident_bytes)`.
    pub fn submit_trace(
        &mut self,
        name: &str,
        payload: Vec<u8>,
    ) -> Result<(TraceId, u32, u64), ClientError> {
        match self.round(&Request::SubmitTrace {
            name: name.to_string(),
            payload,
        })? {
            Response::Submitted {
                trace,
                n_threads,
                resident_bytes,
            } => Ok((trace, n_threads, resident_bytes)),
            other => Err(unexpected("Submitted", other)),
        }
    }

    /// Extrapolates a submitted trace under one parameter set (config
    /// text; empty = server defaults), blocking until the result lands.
    pub fn simulate(
        &mut self,
        trace: TraceId,
        params: &str,
    ) -> Result<PredictionSummary, ClientError> {
        let job = self.accept(&Request::Simulate {
            trace,
            params: params.to_string(),
        })?;
        match self.await_result(job)? {
            Response::Prediction(p) => Ok(p),
            other => Err(unexpected("Prediction", other)),
        }
    }

    /// Runs a sweep grid, blocking until the rows land.  Row order is
    /// the grid order `extrap sweep` prints: benches major, procs minor.
    pub fn sweep(&mut self, spec: SweepSpec) -> Result<Vec<SweepRow>, ClientError> {
        let job = self.accept(&Request::Sweep(spec))?;
        match self.await_result(job)? {
            Response::SweepRows(rows) => Ok(rows),
            other => Err(unexpected("SweepRows", other)),
        }
    }

    /// Drops a submitted trace server-side; returns the bytes freed.
    pub fn evict(&mut self, trace: TraceId) -> Result<u64, ClientError> {
        match self.round(&Request::Evict { trace })? {
            Response::Evicted { freed_bytes } => Ok(freed_bytes),
            other => Err(unexpected("Evicted", other)),
        }
    }

    /// Fetches the phase/epoch statistics report for a submitted trace,
    /// rendered server-side — byte-identical to local `extrap stats`.
    pub fn phases(
        &mut self,
        trace: TraceId,
        phases: bool,
        max_clusters: u32,
        tolerance: f64,
    ) -> Result<String, ClientError> {
        match self.round(&Request::Phases {
            trace,
            phases,
            max_clusters,
            tolerance,
        })? {
            Response::Phases { text } => Ok(text),
            other => Err(unexpected("Phases", other)),
        }
    }

    /// Fetches the static work/span bound report for a submitted trace
    /// (params = config text, empty for server defaults; format =
    /// `text`/`json`/`csv`, empty for text), rendered server-side.
    pub fn analyze(
        &mut self,
        trace: TraceId,
        params: &str,
        format: &str,
    ) -> Result<String, ClientError> {
        match self.round(&Request::Analyze {
            trace,
            params: params.to_string(),
            format: format.to_string(),
        })? {
            Response::Analyzed { rendered } => Ok(rendered),
            other => Err(unexpected("Analyzed", other)),
        }
    }

    /// Fetches a statistics snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", other)),
        }
    }

    /// Asks the server to begin its graceful drain.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("Bye", other)),
        }
    }

    fn accept(&mut self, req: &Request) -> Result<JobId, ClientError> {
        match self.round(req)? {
            Response::Accepted { job } => Ok(job),
            other => Err(unexpected("Accepted", other)),
        }
    }

    /// Long-polls `FetchResult` until the job leaves `Pending`.
    fn await_result(&mut self, job: JobId) -> Result<Response, ClientError> {
        loop {
            match self.round(&Request::FetchResult {
                job,
                wait_ms: 1_000,
            })? {
                Response::Pending { .. } => continue,
                other => return Ok(other),
            }
        }
    }
}
