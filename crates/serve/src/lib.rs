#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # extrap-serve — extrapolation as a service
//!
//! A long-running, multi-tenant daemon serving the [`extrap_proto`]
//! session API over TCP: clients submit traces once, then answer many
//! what-if questions (simulations and whole benchmark sweeps) against
//! the server's shared, memory-budgeted caches.  This is the paper's
//! economics — extrapolation is cheap enough to be interactive — turned
//! into a serving layer that amortizes trace compilation and sweep work
//! across every connected client.
//!
//! Architecture (all std, no async runtime):
//!
//! * an **accept loop** admits up to `max_connections` clients, each
//!   handled by its own thread speaking length-prefixed
//!   [`extrap_proto::wire`] frames;
//! * request **admission** validates everything up front (parameters,
//!   benchmark names, trace bytes) and applies backpressure: a global
//!   in-flight bound plus a per-connection bound, both answered with
//!   [`extrap_proto::ErrorCode::Busy`] rather than queueing unboundedly;
//! * a **bounded worker pool** executes jobs; compatible sweep requests
//!   (same scale + canonical parameter text) that are queued together
//!   are **coalesced into one shared grid** executed through
//!   `extrap_core::sweep` (and its contiguous `claim_chunk` range
//!   claims), so a burst of identical what-if sweeps costs one grid;
//! * the shared caches are **evicted LRU-first under a configurable
//!   memory budget**, charged by the `resident_bytes` accounting probes
//!   on traces and compiled programs;
//! * **graceful shutdown** drains: new work is refused with
//!   `ShuttingDown`, queued jobs finish, results stay fetchable until
//!   the drain completes, then connections close and threads join.
//!
//! The [`client::Client`] in this crate is the *only* client
//! implementation — the `extrap client` CLI, the load-generator bench,
//! and the end-to-end tests all share it.
//!
//! ```no_run
//! use extrap_serve::{Server, ServeConfig};
//! use extrap_serve::client::Client;
//! use extrap_proto::SweepSpec;
//!
//! let server = Server::start(ServeConfig::default().with_addr("127.0.0.1:0")).unwrap();
//! let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
//! let rows = client
//!     .sweep(SweepSpec {
//!         benches: vec!["poisson".into()],
//!         procs: vec![1, 2, 4],
//!         scale: "tiny".into(),
//!         params: String::new(),
//!     })
//!     .unwrap();
//! assert_eq!(rows.len(), 3);
//! server.shutdown_and_join();
//! ```

pub mod client;
mod conn;
mod state;
mod worker;

pub use state::{Service, Session};

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.  [`ServeConfig::default`] is tuned for a
/// local, interactive daemon; every knob has a CLI flag on
/// `extrap serve`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker-pool threads executing jobs.
    pub workers: usize,
    /// Threads one coalesced sweep grid may use inside a worker.
    pub sweep_workers: usize,
    /// Memory budget in bytes for resident traces + the sweep cache
    /// (0 = unlimited).  Enforced LRU-first after every admission that
    /// grows the caches.
    pub mem_budget_bytes: usize,
    /// Global bound on queued + running jobs (backpressure).
    pub max_inflight_jobs: usize,
    /// Per-connection bound on unfetched jobs (backpressure).
    pub max_inflight_per_conn: usize,
    /// Simultaneously open connections; extras are refused with `Busy`.
    pub max_connections: usize,
    /// Per-job deadline: a job still queued this long after admission
    /// fails with `Timeout` instead of running.  Also caps one
    /// `FetchResult`'s server-side wait.
    pub request_timeout: Duration,
    /// How long a worker holding a fresh sweep job lingers for more
    /// compatible sweeps to arrive before executing the batch.  Zero
    /// still coalesces whatever is already queued.
    pub batch_window: Duration,
    /// Run every simulation under the static bounds sanitizer
    /// (`extrap_analyze`): any prediction outside its closed-form
    /// work/span envelope panics the worker instead of shipping a wrong
    /// answer.  Debugging/CI knob — off by default.
    pub check_bounds: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:4755".into(),
            workers: extrap_core::sweep::default_workers(),
            sweep_workers: extrap_core::sweep::default_workers(),
            mem_budget_bytes: 256 << 20,
            max_inflight_jobs: 1024,
            max_inflight_per_conn: 32,
            max_connections: 1024,
            request_timeout: Duration::from_secs(30),
            batch_window: Duration::from_millis(1),
            check_bounds: false,
        }
    }
}

impl ServeConfig {
    /// Replaces the listen address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> ServeConfig {
        self.addr = addr.into();
        self
    }
}

/// Server startup/runtime failures.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind {
        /// The address that could not be bound.
        addr: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A configuration value is unusable.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "bind {addr}: {source}"),
            ServeError::Config(d) => write!(f, "bad config: {d}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A running server: the accept loop, worker pool, and shared state.
pub struct Server {
    service: Arc<Service>,
    local_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the accept loop and worker pool.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::Config("workers must be >= 1".into()));
        }
        if config.check_bounds {
            extrap_analyze::install_sanitizer();
        }
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let local_addr = listener.local_addr().map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let service = Arc::new(Service::new(config.clone()));
        let workers = (0..config.workers)
            .map(|i| {
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("extrap-serve-worker-{i}"))
                    .spawn(move || worker::run(&service))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("extrap-serve-accept".into())
                .spawn(move || conn::accept_loop(listener, &service))
                .expect("spawn accept loop")
        };
        Ok(Server {
            service,
            local_addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service, for in-process sessions alongside TCP ones.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Begins graceful shutdown: refuse new work, drain queued jobs.
    /// Returns immediately; use [`join`](Server::join) to wait.
    pub fn shutdown(&self) {
        self.service.begin_shutdown();
    }

    /// Waits for the accept loop, every worker, and every connection to
    /// finish.  Call after [`shutdown`](Server::shutdown) (or after a
    /// client sent [`extrap_proto::Request::Shutdown`]).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Connection threads are detached; wait out their counter.
        while self.service.stats().active_connections > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// [`shutdown`](Server::shutdown) + [`join`](Server::join).
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}
