//! The worker pool: pops admitted jobs off the queue and executes them,
//! coalescing compatible sweeps into one shared grid per batch.

use crate::state::{JobPayload, Service, SimWork, SweepKey, SweepWork, Work};
use extrap_core::sweep::{sweep_cancellable, SweepJob};
use extrap_core::{ExtrapError, Extrapolator};
use extrap_proto::{ErrorCode, JobId, PredictionSummary, SweepRow};
use pcpp_rt::sync::Instant;
use std::collections::HashMap;

/// One worker thread's life: execute jobs until shutdown drains the
/// queue.
pub(crate) fn run(service: &Service) {
    while let Some(qw) = service.next_work() {
        match qw.work {
            Work::Simulate(sim) => run_simulate(service, sim, qw.deadline),
            Work::Sweep(first) => run_sweep_batch(service, first, qw.deadline),
        }
    }
}

/// Fails a job with `Timeout` if its deadline passed while it was
/// queued; returns whether it did.
fn expired(service: &Service, job: JobId, deadline: Instant) -> bool {
    if Instant::now() > deadline {
        service.complete(
            job,
            Err((
                ErrorCode::Timeout,
                "job exceeded the request timeout while queued".to_string(),
            )),
        );
        true
    } else {
        false
    }
}

fn run_simulate(service: &Service, sim: SimWork, deadline: Instant) {
    if expired(service, sim.job, deadline) {
        return;
    }
    let outcome = Extrapolator::new(sim.params)
        .run(sim.trace.program())
        .map(|p| JobPayload::Prediction(PredictionSummary::from(&p)))
        .map_err(|e| (ErrorCode::Internal, e.to_string()));
    service.complete(sim.job, outcome);
}

/// Executes one sweep batch: linger for `batch_window` so concurrent
/// compatible sweeps can join, union the members' grids (deduped), run
/// the whole thing through one `sweep_cancellable` call, then hand each
/// member its own slice of the shared results.
fn run_sweep_batch(service: &Service, first: SweepWork, first_deadline: Instant) {
    let window = service.config().batch_window;
    if !window.is_zero() && !service.is_shutting_down() {
        std::thread::sleep(window);
    }
    let (scale_code, compat) = (first.scale_code, first.compat.clone());
    let mut batch = vec![(first, first_deadline)];
    for qw in service.drain_compatible(scale_code, &compat) {
        if let Work::Sweep(s) = qw.work {
            batch.push((s, qw.deadline));
        }
    }
    service.count_sweep_batch(batch.len());

    let mut live: Vec<SweepWork> = Vec::with_capacity(batch.len());
    for (s, deadline) in batch {
        if !expired(service, s.job, deadline) {
            live.push(s);
        }
    }
    if live.is_empty() {
        return;
    }

    // Union grid in first-seen order, deduped: a point requested by
    // five coalesced sweeps simulates once and fans out five times.
    let mut index: HashMap<(String, usize), usize> = HashMap::new();
    let mut jobs: Vec<SweepJob<SweepKey>> = Vec::new();
    for s in &live {
        for b in &s.benches {
            for &n in &s.procs {
                let point = (b.name().to_string(), n as usize);
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(point) {
                    jobs.push(SweepJob {
                        key: (e.key().0.clone(), e.key().1, s.scale_code),
                        params: s.params.clone(),
                    });
                    e.insert(jobs.len() - 1);
                }
            }
        }
    }

    let scale = live[0].scale;
    let results = sweep_cancellable(
        &jobs,
        service.config().sweep_workers,
        service.sweep_cache(),
        |(name, n, _)| {
            let bench = extrap_workloads::Bench::all()
                .into_iter()
                .find(|b| b.name() == name.as_str())
                .expect("benchmark validated at admission");
            extrap_trace::translate(&bench.trace(*n, scale), Default::default())
        },
        service.cancel_token(),
    );

    // Exact integer nanoseconds per grid point; clients re-derive any
    // float rendering from these, byte-identically to the in-process
    // pipeline.
    let points: Vec<Result<u64, (ErrorCode, String)>> = results
        .iter()
        .map(|r| match r {
            Ok(p) => Ok(p.exec_time().as_ns()),
            Err(e) => Err(match e.error {
                ExtrapError::Cancelled => (ErrorCode::ShuttingDown, e.to_string()),
                _ => (ErrorCode::Internal, e.to_string()),
            }),
        })
        .collect();

    for s in &live {
        let mut rows = Vec::with_capacity(s.benches.len() * s.procs.len());
        let mut failure: Option<(ErrorCode, String)> = None;
        'member: for b in &s.benches {
            for &n in &s.procs {
                let i = index[&(b.name().to_string(), n as usize)];
                match &points[i] {
                    Ok(ns) => rows.push(SweepRow {
                        bench: b.name().to_string(),
                        procs: n,
                        exec_time_ns: *ns,
                    }),
                    Err(e) => {
                        failure = Some(e.clone());
                        break 'member;
                    }
                }
            }
        }
        let outcome = match failure {
            None => Ok(JobPayload::Rows(rows)),
            Some(e) => Err(e),
        };
        service.complete(s.job, outcome);
    }
    service.enforce_budget();
}
