//! Shared server state: the resident-trace store, the job table and
//! work queue, and the [`Session`] dispatcher every surface (TCP
//! connections and in-process callers alike) routes requests through.

use crate::ServeConfig;
use extrap_core::sweep::CachedTrace;
use extrap_core::{machine, CancelToken, RecordMode, SharedTraceCache, SimParams};
use extrap_proto::{
    ErrorCode, JobId, PredictionSummary, Request, Response, ServerStats, SweepRow, SweepSpec,
    TraceId,
};
use extrap_workloads::{Bench, Scale};
use pcpp_rt::sync::{AtomicFlag, Condvar, Instant, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sweep-cache key: `(benchmark, n_procs, scale code)`.  Unlike the
/// CLI's per-invocation cache, the server's cache persists across
/// requests that may use different problem scales, so the scale is part
/// of the identity.
pub(crate) type SweepKey = (String, usize, u8);

/// Decodes a wire scale string (empty = the CLI's `small` default).
pub(crate) fn parse_scale(s: &str) -> Option<(Scale, u8)> {
    match s {
        "tiny" => Some((Scale::Tiny, 0)),
        "" | "small" => Some((Scale::Small, 1)),
        "paper" => Some((Scale::Paper, 2)),
        _ => None,
    }
}

/// Decodes wire parameter text (empty = the CLI's default machine) and
/// forces `MetricsOnly`: service jobs only ever report scalar metrics,
/// so recording predicted traces would be pure memory burn.
fn parse_params(text: &str) -> Result<SimParams, String> {
    let mut params = if text.is_empty() {
        machine::default_distributed()
    } else {
        SimParams::from_config_text(text)?
    };
    params.record_mode = RecordMode::MetricsOnly;
    Ok(params)
}

fn err(code: ErrorCode, detail: impl Into<String>) -> Response {
    Response::Error {
        code,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------
// Work items
// ---------------------------------------------------------------------

/// An admitted simulate job, with its trace resolved at admission so a
/// later eviction cannot fail a queued job.
pub(crate) struct SimWork {
    pub(crate) job: JobId,
    pub(crate) trace: Arc<CachedTrace>,
    pub(crate) params: SimParams,
}

/// An admitted sweep job.  `compat` is the canonical parameter text;
/// two sweeps coalesce into one batch iff their `(scale_code, compat)`
/// pairs match (canonical text round-trips through the parser, so equal
/// text means equal parameters).
pub(crate) struct SweepWork {
    pub(crate) job: JobId,
    pub(crate) benches: Vec<Bench>,
    pub(crate) procs: Vec<u32>,
    pub(crate) scale: Scale,
    pub(crate) scale_code: u8,
    pub(crate) params: SimParams,
    pub(crate) compat: String,
}

pub(crate) enum Work {
    Simulate(SimWork),
    Sweep(SweepWork),
}

/// A queue entry: the work plus the deadline after which it fails with
/// `Timeout` instead of running.
pub(crate) struct QueuedWork {
    pub(crate) work: Work,
    pub(crate) deadline: Instant,
}

impl QueuedWork {
    fn job(&self) -> JobId {
        match &self.work {
            Work::Simulate(s) => s.job,
            Work::Sweep(s) => s.job,
        }
    }
}

// ---------------------------------------------------------------------
// Job table
// ---------------------------------------------------------------------

/// A finished job's deliverable.
pub(crate) enum JobPayload {
    Prediction(PredictionSummary),
    Rows(Vec<SweepRow>),
}

pub(crate) type JobOutcome = Result<JobPayload, (ErrorCode, String)>;

enum JobState {
    Queued,
    Running,
    Done(JobOutcome),
}

struct JobEntry {
    state: JobState,
    /// The owning session's unfetched-jobs gauge (per-connection
    /// backpressure); decremented when the result is consumed.
    owner_unfetched: Arc<AtomicU32>,
    /// Cleared when the owning session hangs up: results completed for
    /// a dead owner are dropped instead of parked forever.
    owner_alive: Arc<AtomicBool>,
}

#[derive(Default)]
struct JobTable {
    queue: VecDeque<QueuedWork>,
    entries: HashMap<JobId, JobEntry>,
    /// Jobs queued or running — the global backpressure gauge.
    inflight: usize,
    /// Jobs currently executing on a worker.
    running: usize,
}

// ---------------------------------------------------------------------
// Trace store
// ---------------------------------------------------------------------

struct StoredTrace {
    #[allow(dead_code)] // diagnostics only, surfaced in future listings
    name: String,
    cached: Arc<CachedTrace>,
    last_used: u64,
}

#[derive(Default)]
struct TraceStore {
    entries: HashMap<TraceId, StoredTrace>,
    clock: u64,
}

impl TraceStore {
    fn resident_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.cached.resident_bytes())
            .sum()
    }
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    active_connections: AtomicU32,
    requests: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    sweep_batches: AtomicU64,
    coalesced_sweeps: AtomicU64,
    store_evictions: AtomicU64,
    submit_translations: AtomicU64,
}

// ---------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------

/// The shared heart of a server: every connection thread, worker
/// thread, and in-process [`Session`] holds the same `Arc<Service>`.
///
/// All blocking coordination (job table, work/done condvars, the drain
/// flag) goes through [`pcpp_rt::sync`], so the whole submit → execute
/// → fetch → drain protocol is visible to the `extrap-check` model
/// checker; see its `job-table` scenario.
pub struct Service {
    config: ServeConfig,
    started: Instant,
    shutting_down: AtomicFlag,
    cancel: CancelToken,
    next_trace: AtomicU64,
    next_job: AtomicU64,
    store: Mutex<TraceStore>,
    sweep_cache: SharedTraceCache<SweepKey>,
    table: Mutex<JobTable>,
    /// Wakes workers when work is queued (or shutdown begins).
    work_cv: Condvar,
    /// Wakes `FetchResult` waiters when a job completes.
    done_cv: Condvar,
    counters: Counters,
}

impl Service {
    pub(crate) fn new(config: ServeConfig) -> Service {
        Service {
            config,
            started: Instant::now(),
            shutting_down: AtomicFlag::new(false),
            cancel: CancelToken::new(),
            next_trace: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            store: Mutex::new(TraceStore::default()),
            sweep_cache: SharedTraceCache::new(),
            table: Mutex::new(JobTable::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            counters: Counters::default(),
        }
    }

    /// Builds a standalone service for in-process use: scenario tests
    /// and embedders that drive [`Session`]s and
    /// [`run_worker`](Service::run_worker) directly, with no TCP
    /// surface.  The `extrap-check` job-table scenario model-checks the
    /// service through exactly this entry point.
    pub fn new_in_process(config: ServeConfig) -> Arc<Service> {
        Arc::new(Service::new(config))
    }

    /// Runs one worker loop on the calling thread until the service
    /// drains — the in-process equivalent of a [`crate::Server`] worker
    /// thread.
    pub fn run_worker(self: &Arc<Service>) {
        crate::worker::run(self);
    }

    /// Opens a session — the in-process equivalent of connecting.
    pub fn session(self: &Arc<Service>) -> Session {
        Session {
            service: Arc::clone(self),
            unfetched: Arc::new(AtomicU32::new(0)),
            alive: Arc::new(AtomicBool::new(true)),
            jobs: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub(crate) fn sweep_cache(&self) -> &SharedTraceCache<SweepKey> {
        &self.sweep_cache
    }

    pub(crate) fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Flips the drain flag and wakes everyone blocked on state.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true);
        let _guard = self.table.lock();
        self.work_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Whether [`begin_shutdown`](Service::begin_shutdown) has run.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load()
    }

    /// Whether the drain is complete: shutting down with nothing queued
    /// or running.  Results may still be parked for their owners.
    pub fn drained(&self) -> bool {
        if !self.is_shutting_down() {
            return false;
        }
        let table = self.table.lock();
        table.queue.is_empty() && table.running == 0
    }

    // -- connection accounting (TCP surface only) ---------------------

    /// Admits a connection unless at the limit; counts it if admitted.
    pub(crate) fn try_open_conn(&self) -> bool {
        let c = &self.counters;
        loop {
            let active = c.active_connections.load(Ordering::Relaxed);
            if active as usize >= self.config.max_connections {
                return false;
            }
            if c.active_connections
                .compare_exchange(active, active + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                c.connections.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
    }

    pub(crate) fn conn_closed(&self) {
        self.counters
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
    }

    // -- worker-side queue operations ---------------------------------

    /// Blocks for the next queue item; `None` once the server is
    /// shutting down and the queue has drained.
    pub(crate) fn next_work(&self) -> Option<QueuedWork> {
        let mut table = self.table.lock();
        loop {
            if let Some(qw) = table.queue.pop_front() {
                table.running += 1;
                if let Some(e) = table.entries.get_mut(&qw.job()) {
                    e.state = JobState::Running;
                }
                return Some(qw);
            }
            if self.is_shutting_down() {
                return None;
            }
            self.work_cv.wait(&mut table);
        }
    }

    /// Pulls every queued sweep compatible with `(scale_code, compat)`
    /// out of the queue (marking them running), leaving everything else
    /// in order — the coalescing step of a batch.
    pub(crate) fn drain_compatible(&self, scale_code: u8, compat: &str) -> Vec<QueuedWork> {
        let mut table = self.table.lock();
        let mut kept = VecDeque::with_capacity(table.queue.len());
        let mut out = Vec::new();
        while let Some(qw) = table.queue.pop_front() {
            match &qw.work {
                Work::Sweep(s) if s.scale_code == scale_code && s.compat == compat => {
                    table.running += 1;
                    if let Some(e) = table.entries.get_mut(&s.job) {
                        e.state = JobState::Running;
                    }
                    out.push(qw);
                }
                _ => kept.push_back(qw),
            }
        }
        table.queue = kept;
        out
    }

    /// Records one executed sweep batch covering `members` jobs.
    pub(crate) fn count_sweep_batch(&self, members: usize) {
        self.counters.sweep_batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .coalesced_sweeps
            .fetch_add(members.saturating_sub(1) as u64, Ordering::Relaxed);
    }

    /// Lands a job's outcome and wakes fetchers.  Results whose owner
    /// already hung up are dropped on the floor.
    pub(crate) fn complete(&self, job: JobId, outcome: JobOutcome) {
        match &outcome {
            Ok(_) => self.counters.jobs_done.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.counters.jobs_failed.fetch_add(1, Ordering::Relaxed),
        };
        let mut table = self.table.lock();
        table.inflight = table.inflight.saturating_sub(1);
        table.running = table.running.saturating_sub(1);
        if let Some(e) = table.entries.get_mut(&job) {
            if e.owner_alive.load(Ordering::Relaxed) {
                e.state = JobState::Done(outcome);
            } else {
                e.owner_unfetched.fetch_sub(1, Ordering::Relaxed);
                table.entries.remove(&job);
            }
        }
        drop(table);
        self.done_cv.notify_all();
    }

    // -- memory budget ------------------------------------------------

    /// Brings resident memory (submitted traces + the sweep cache) back
    /// under the configured budget.  Sweep-cache entries are
    /// recomputable from benchmark generators, so they go first; only
    /// then are least-recently-used submitted traces dropped (their
    /// next use fails with `UnknownTrace` and the client resubmits).
    pub(crate) fn enforce_budget(&self) {
        let budget = self.config.mem_budget_bytes;
        if budget == 0 {
            return;
        }
        let store_bytes = self.store.lock().resident_bytes();
        self.sweep_cache
            .evict_to_budget(budget.saturating_sub(store_bytes));
        let cache_bytes = self.sweep_cache.resident_bytes();
        let mut store = self.store.lock();
        let mut total = cache_bytes + store.resident_bytes();
        while total > budget {
            let victim = store
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| *id);
            let Some(id) = victim else { break };
            let freed = store
                .entries
                .remove(&id)
                .map(|e| e.cached.resident_bytes())
                .unwrap_or(0);
            total = total.saturating_sub(freed);
            self.counters
                .store_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resolves a submitted trace, refreshing its LRU stamp.
    fn touch_trace(&self, id: TraceId) -> Option<Arc<CachedTrace>> {
        self.touch_trace_named(id).map(|(_, cached)| cached)
    }

    /// [`touch_trace`](Service::touch_trace) plus the name the client
    /// submitted under — the label synchronous renders print.
    fn touch_trace_named(&self, id: TraceId) -> Option<(String, Arc<CachedTrace>)> {
        let mut store = self.store.lock();
        store.clock += 1;
        let stamp = store.clock;
        let e = store.entries.get_mut(&id)?;
        e.last_used = stamp;
        Some((e.name.clone(), Arc::clone(&e.cached)))
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        let (traces_resident, store_bytes) = {
            let store = self.store.lock();
            (store.entries.len(), store.resident_bytes())
        };
        let inflight = self.table.lock().inflight;
        let c = &self.counters;
        ServerStats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            connections: c.connections.load(Ordering::Relaxed),
            active_connections: c.active_connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            jobs_inflight: inflight as u32,
            jobs_done: c.jobs_done.load(Ordering::Relaxed),
            jobs_failed: c.jobs_failed.load(Ordering::Relaxed),
            sweep_batches: c.sweep_batches.load(Ordering::Relaxed),
            coalesced_sweeps: c.coalesced_sweeps.load(Ordering::Relaxed),
            traces_resident: traces_resident as u32,
            resident_bytes: (store_bytes + self.sweep_cache.resident_bytes()) as u64,
            mem_budget_bytes: self.config.mem_budget_bytes as u64,
            evictions: c.store_evictions.load(Ordering::Relaxed)
                + self.sweep_cache.evictions() as u64,
            translations: c.submit_translations.load(Ordering::Relaxed)
                + self.sweep_cache.translations() as u64,
        }
    }
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// One client's view of a [`Service`]: admission, per-connection
/// backpressure, and result delivery.  A TCP connection owns exactly
/// one; in-process callers get one from [`Service::session`].  Dropping
/// a session releases its parked results and lets in-flight jobs
/// discard theirs on completion.
pub struct Session {
    service: Arc<Service>,
    unfetched: Arc<AtomicU32>,
    alive: Arc<AtomicBool>,
    jobs: Mutex<Vec<JobId>>,
}

impl Session {
    /// Dispatches one request to its handler — the single entry point
    /// the wire loop and in-process callers share.
    pub fn handle(&self, req: Request) -> Response {
        self.service
            .counters
            .requests
            .fetch_add(1, Ordering::Relaxed);
        match req {
            Request::SubmitTrace { name, payload } => self.submit(name, payload),
            Request::Simulate { trace, params } => self.simulate(trace, &params),
            Request::Sweep(spec) => self.sweep(spec),
            Request::FetchResult { job, wait_ms } => self.fetch(job, wait_ms),
            Request::Evict { trace } => self.evict(trace),
            Request::Stats => Response::Stats(self.service.stats()),
            Request::Phases {
                trace,
                phases,
                max_clusters,
                tolerance,
            } => self.phases(trace, phases, max_clusters, tolerance),
            Request::Analyze {
                trace,
                params,
                format,
            } => self.analyze(trace, &params, &format),
            Request::Shutdown => {
                self.service.begin_shutdown();
                Response::Bye
            }
        }
    }

    /// Whether this session still has jobs it has not fetched.
    pub fn has_unfetched(&self) -> bool {
        self.unfetched.load(Ordering::Relaxed) > 0
    }

    fn submit(&self, name: String, payload: Vec<u8>) -> Response {
        if self.service.is_shutting_down() {
            return err(ErrorCode::ShuttingDown, "server is draining");
        }
        let built = match payload.get(..4) {
            // Raw traces stream through the epoch translator instead of
            // materializing the whole `ProgramTrace` first: admission
            // peak memory is the payload plus the translated set, not
            // payload + decoded records + set.  The set itself is kept —
            // `Phases`/`Stats` requests read it.
            Some(b"XTRP") => extrap_trace::stream::ProgramStream::new(
                extrap_trace::stream::SliceSource(&payload),
            )
            .and_then(|mut stream| {
                self.service
                    .counters
                    .submit_translations
                    .fetch_add(1, Ordering::Relaxed);
                extrap_trace::translate_stream_to_set(&mut stream, Default::default(), usize::MAX)
            })
            .map_err(|e| e.to_string())
            .and_then(|(set, _stats)| CachedTrace::new(set).map_err(|e| e.to_string())),
            Some(b"XTPS") => extrap_trace::format::decode_set(&payload)
                .and_then(CachedTrace::new)
                .map_err(|e| e.to_string()),
            _ => Err("not a trace image (expected XTRP or XTPS magic)".to_string()),
        };
        let cached = match built {
            Ok(c) => Arc::new(c),
            Err(detail) => return err(ErrorCode::BadRequest, detail),
        };
        let id = TraceId(self.service.next_trace.fetch_add(1, Ordering::Relaxed) + 1);
        let n_threads = cached.n_threads() as u32;
        let resident_bytes = cached.resident_bytes() as u64;
        {
            let mut store = self.service.store.lock();
            store.clock += 1;
            let stamp = store.clock;
            store.entries.insert(
                id,
                StoredTrace {
                    name,
                    cached,
                    last_used: stamp,
                },
            );
        }
        self.service.enforce_budget();
        Response::Submitted {
            trace: id,
            n_threads,
            resident_bytes,
        }
    }

    fn simulate(&self, trace: TraceId, params_text: &str) -> Response {
        if self.service.is_shutting_down() {
            return err(ErrorCode::ShuttingDown, "server is draining");
        }
        let params = match parse_params(params_text) {
            Ok(p) => p,
            Err(detail) => return err(ErrorCode::BadRequest, detail),
        };
        let Some(cached) = self.service.touch_trace(trace) else {
            return err(
                ErrorCode::UnknownTrace,
                format!("trace #{} is not resident (submit it again)", trace.0),
            );
        };
        self.admit(|job| {
            Work::Simulate(SimWork {
                job,
                trace: cached,
                params,
            })
        })
    }

    fn sweep(&self, spec: SweepSpec) -> Response {
        if self.service.is_shutting_down() {
            return err(ErrorCode::ShuttingDown, "server is draining");
        }
        if spec.benches.is_empty() {
            return err(ErrorCode::BadRequest, "sweep needs at least one benchmark");
        }
        if spec.procs.is_empty() || spec.procs.contains(&0) {
            return err(
                ErrorCode::BadRequest,
                "sweep needs a non-empty list of positive processor counts",
            );
        }
        let mut benches = Vec::with_capacity(spec.benches.len());
        for name in &spec.benches {
            match Bench::all()
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(name.trim()))
            {
                Some(b) => benches.push(b),
                None => {
                    return err(
                        ErrorCode::BadRequest,
                        format!("unknown benchmark {name:?}; see `extrap benches`"),
                    )
                }
            }
        }
        let Some((scale, scale_code)) = parse_scale(&spec.scale) else {
            return err(
                ErrorCode::BadRequest,
                format!("unknown scale {:?} (tiny|small|paper)", spec.scale),
            );
        };
        let params = match parse_params(&spec.params) {
            Ok(p) => p,
            Err(detail) => return err(ErrorCode::BadRequest, detail),
        };
        let compat = params.to_config_text();
        self.admit(|job| {
            Work::Sweep(SweepWork {
                job,
                benches,
                procs: spec.procs,
                scale,
                scale_code,
                params,
                compat,
            })
        })
    }

    /// Queues validated work under both backpressure bounds.
    fn admit(&self, make: impl FnOnce(JobId) -> Work) -> Response {
        let config = self.service.config();
        if self.unfetched.load(Ordering::Relaxed) as usize >= config.max_inflight_per_conn {
            return err(
                ErrorCode::Busy,
                "connection has too many unfetched jobs; fetch some results first",
            );
        }
        let mut table = self.service.table.lock();
        if table.inflight >= config.max_inflight_jobs {
            return err(ErrorCode::Busy, "server job queue is full; retry shortly");
        }
        let job = JobId(self.service.next_job.fetch_add(1, Ordering::Relaxed) + 1);
        table.entries.insert(
            job,
            JobEntry {
                state: JobState::Queued,
                owner_unfetched: Arc::clone(&self.unfetched),
                owner_alive: Arc::clone(&self.alive),
            },
        );
        table.queue.push_back(QueuedWork {
            work: make(job),
            deadline: Instant::now() + config.request_timeout,
        });
        table.inflight += 1;
        self.unfetched.fetch_add(1, Ordering::Relaxed);
        self.jobs.lock().push(job);
        drop(table);
        self.service.work_cv.notify_one();
        Response::Accepted { job }
    }

    fn fetch(&self, job: JobId, wait_ms: u32) -> Response {
        let wait =
            Duration::from_millis(u64::from(wait_ms)).min(self.service.config().request_timeout);
        let deadline = Instant::now() + wait;
        let mut table = self.service.table.lock();
        loop {
            match table.entries.get(&job) {
                None => {
                    return err(
                        ErrorCode::UnknownJob,
                        format!("job #{} does not exist (or was already fetched)", job.0),
                    )
                }
                Some(e) if matches!(e.state, JobState::Done(_)) => break,
                Some(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Response::Pending { job };
                    }
                    self.service
                        .done_cv
                        .wait_timeout(&mut table, deadline.saturating_duration_since(now));
                }
            }
        }
        let entry = table.entries.remove(&job).expect("checked above");
        entry.owner_unfetched.fetch_sub(1, Ordering::Relaxed);
        match entry.state {
            JobState::Done(Ok(JobPayload::Prediction(p))) => Response::Prediction(p),
            JobState::Done(Ok(JobPayload::Rows(rows))) => Response::SweepRows(rows),
            JobState::Done(Err((code, detail))) => Response::Error { code, detail },
            JobState::Queued | JobState::Running => unreachable!("loop exits only on Done"),
        }
    }

    fn evict(&self, id: TraceId) -> Response {
        let mut store = self.service.store.lock();
        match store.entries.remove(&id) {
            Some(e) => {
                self.service
                    .counters
                    .store_evictions
                    .fetch_add(1, Ordering::Relaxed);
                Response::Evicted {
                    freed_bytes: e.cached.resident_bytes() as u64,
                }
            }
            None => err(
                ErrorCode::UnknownTrace,
                format!("trace #{} is not resident", id.0),
            ),
        }
    }

    /// `Phases`: the phase/epoch statistics report, rendered server-side
    /// through the same formatter `extrap stats` uses locally, so the
    /// remote text is byte-identical.  Synchronous — the report is a
    /// cheap scan over an already-resident trace, so it skips the job
    /// queue like `Stats` does.
    fn phases(&self, trace: TraceId, phases: bool, max_clusters: u32, tolerance: f64) -> Response {
        let Some(cached) = self.service.touch_trace(trace) else {
            return err(
                ErrorCode::UnknownTrace,
                format!("trace #{} is not resident (submit it again)", trace.0),
            );
        };
        let opts = extrap_trace::ClusterOptions {
            max_clusters: max_clusters as usize,
            tolerance,
        };
        let Some(traces) = cached.traces() else {
            return err(
                ErrorCode::BadRequest,
                format!(
                    "trace #{} was compiled out-of-core and holds no per-thread traces",
                    trace.0
                ),
            );
        };
        Response::Phases {
            text: extrap_trace::render_stats_report(traces, phases, &opts),
        }
    }

    /// `Analyze`: the static work/span bound report for a resident
    /// trace, rendered server-side through the `extrap analyze`
    /// formatter.  Synchronous for the same reason as
    /// [`phases`](Session::phases): closed-form analysis costs one pass
    /// over the compiled program, not a simulation.
    fn analyze(&self, trace: TraceId, params_text: &str, format_text: &str) -> Response {
        let params = match parse_params(params_text) {
            Ok(p) => p,
            Err(detail) => return err(ErrorCode::BadRequest, detail),
        };
        let format_text = if format_text.is_empty() {
            "text"
        } else {
            format_text
        };
        let Some(format) = extrap_analyze::Format::parse(format_text) else {
            return err(
                ErrorCode::BadRequest,
                format!("unknown analyze format {format_text:?} (text|json|csv)"),
            );
        };
        let Some((name, cached)) = self.service.touch_trace_named(trace) else {
            return err(
                ErrorCode::UnknownTrace,
                format!("trace #{} is not resident (submit it again)", trace.0),
            );
        };
        match extrap_analyze::analyze(cached.program(), &params) {
            Ok(analysis) => Response::Analyzed {
                rendered: extrap_analyze::render(&name, &analysis, &[], format),
            },
            Err(e) => err(ErrorCode::BadRequest, e.to_string()),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Relaxed);
        let ids = std::mem::take(&mut *self.jobs.lock());
        let mut table = self.service.table.lock();
        for id in ids {
            if matches!(
                table.entries.get(&id).map(|e| &e.state),
                Some(JobState::Done(_))
            ) {
                table.entries.remove(&id);
            }
        }
    }
}
