//! The versioned wire codec: length-prefixed frames over any
//! `Read`/`Write` pair, tagged little-endian payloads via the
//! `extrap-trace::bytesio` primitives.
//!
//! ```text
//! frame   := magic "XSRV" | len:u32le | payload[len]
//! payload := version:u16le | tag:u8 | body
//! ```
//!
//! Every decode is total: truncated bodies, unknown tags, version
//! mismatches, and trailing garbage are all [`ProtoError`]s, never
//! panics — a malformed client must not take a server worker down.
//! Encoding is canonical (one byte string per value), so
//! `encode(decode(bytes)) == bytes` for every accepted input; the
//! protocol property tests drive this with randomized values.

use crate::{
    BreakdownRow, ErrorCode, JobId, PredictionSummary, Request, Response, ServerStats, SweepRow,
    SweepSpec, TraceId,
};
use extrap_trace::bytesio::BufMut;
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol revision; bumped on any wire-visible change.  A peer
/// speaking a different version is rejected with
/// [`ProtoError::Version`] at decode time.
///
/// v2 added [`Request::Phases`]/[`Response::Phases`] (remote
/// `stats --phases` parity) and [`Request::Analyze`]/
/// [`Response::Analyzed`] (static bound analysis as a service).
pub const PROTO_VERSION: u16 = 2;

/// Leading bytes of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"XSRV";

/// Upper bound a reader enforces on the declared payload length before
/// allocating — large enough for paper-scale trace submissions, small
/// enough that a corrupt length field cannot balloon memory.
pub const MAX_FRAME_LEN: u32 = 256 << 20;

/// Codec and framing failures.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The payload does not parse (truncated, unknown tag, trailing
    /// bytes, bad enum value, non-UTF-8 string…).
    Malformed(String),
    /// The peer speaks a different protocol revision.
    Version {
        /// The version the peer sent.
        got: u16,
    },
    /// The frame header's magic is wrong — not an extrap-serve peer.
    BadMagic,
    /// The declared payload length exceeds the reader's cap.
    TooLarge {
        /// Declared length.
        len: u32,
        /// Enforced cap.
        max: u32,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Malformed(d) => write!(f, "malformed frame: {d}"),
            ProtoError::Version { got } => {
                write!(f, "protocol version {got} (expected {PROTO_VERSION})")
            }
            ProtoError::BadMagic => write!(f, "bad frame magic (not an extrap-serve peer)"),
            ProtoError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&FRAME_MAGIC);
    header[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload.  `Ok(None)` is a clean end of stream —
/// the peer closed exactly on a frame boundary; EOF anywhere else is
/// malformed.  `max_len` caps the declared payload length (use
/// [`MAX_FRAME_LEN`] unless the endpoint wants a tighter bound).
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; 8];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ProtoError::Malformed(format!(
                    "eof after {got} header bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    if header[..4] != FRAME_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let len = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(ProtoError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => {
            ProtoError::Malformed(format!("eof inside a {len}-byte payload"))
        }
        _ => ProtoError::Io(e),
    })?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Checked little-endian reader
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a payload: every read reports
/// truncation as an error instead of panicking like the raw
/// `bytesio::Buf` getters.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() < n {
            return Err(ProtoError::Malformed(format!(
                "truncated: wanted {n} bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| ProtoError::Malformed("non-UTF-8 string".into()))
    }

    /// A length-prefixed sequence decoded element-wise.
    fn seq<T>(
        &mut self,
        mut item: impl FnMut(&mut Reader<'a>) -> Result<T, ProtoError>,
    ) -> Result<Vec<T>, ProtoError> {
        let count = self.u32()? as usize;
        // Guard against absurd counts before allocating: every element
        // needs at least one byte of body.
        if count > self.buf.len() {
            return Err(ProtoError::Malformed(format!(
                "sequence of {count} elements in {}-byte body",
                self.buf.len()
            )));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(item(self)?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!(
                "{} trailing bytes after the body",
                self.buf.len()
            )))
        }
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn header(tag: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.put_u16_le(PROTO_VERSION);
    buf.put_u8(tag);
    buf
}

fn open_payload<'a>(data: &'a [u8], what: &str) -> Result<(Reader<'a>, u8), ProtoError> {
    let mut r = Reader::new(data);
    let version = r.u16()?;
    if version != PROTO_VERSION {
        return Err(ProtoError::Version { got: version });
    }
    let tag = r.u8()?;
    if tag == 0 {
        return Err(ProtoError::Malformed(format!("{what} tag 0")));
    }
    Ok((r, tag))
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

const REQ_SUBMIT: u8 = 1;
const REQ_SIMULATE: u8 = 2;
const REQ_SWEEP: u8 = 3;
const REQ_FETCH: u8 = 4;
const REQ_EVICT: u8 = 5;
const REQ_STATS: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;
const REQ_PHASES: u8 = 8;
const REQ_ANALYZE: u8 = 9;

/// Encodes one request as a frame payload (pass to [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::SubmitTrace { name, payload } => {
            let mut buf = header(REQ_SUBMIT);
            put_string(&mut buf, name);
            put_bytes(&mut buf, payload);
            buf
        }
        Request::Simulate { trace, params } => {
            let mut buf = header(REQ_SIMULATE);
            buf.put_u64_le(trace.0);
            put_string(&mut buf, params);
            buf
        }
        Request::Sweep(spec) => {
            let mut buf = header(REQ_SWEEP);
            buf.put_u32_le(spec.benches.len() as u32);
            for b in &spec.benches {
                put_string(&mut buf, b);
            }
            buf.put_u32_le(spec.procs.len() as u32);
            for &p in &spec.procs {
                buf.put_u32_le(p);
            }
            put_string(&mut buf, &spec.scale);
            put_string(&mut buf, &spec.params);
            buf
        }
        Request::FetchResult { job, wait_ms } => {
            let mut buf = header(REQ_FETCH);
            buf.put_u64_le(job.0);
            buf.put_u32_le(*wait_ms);
            buf
        }
        Request::Evict { trace } => {
            let mut buf = header(REQ_EVICT);
            buf.put_u64_le(trace.0);
            buf
        }
        Request::Stats => header(REQ_STATS),
        Request::Shutdown => header(REQ_SHUTDOWN),
        Request::Phases {
            trace,
            phases,
            max_clusters,
            tolerance,
        } => {
            let mut buf = header(REQ_PHASES);
            buf.put_u64_le(trace.0);
            buf.put_u8(u8::from(*phases));
            buf.put_u32_le(*max_clusters);
            buf.put_u64_le(tolerance.to_bits());
            buf
        }
        Request::Analyze {
            trace,
            params,
            format,
        } => {
            let mut buf = header(REQ_ANALYZE);
            buf.put_u64_le(trace.0);
            put_string(&mut buf, params);
            put_string(&mut buf, format);
            buf
        }
    }
}

/// Decodes one request payload; rejects version mismatches, unknown
/// tags, truncation, and trailing bytes.
pub fn decode_request(data: &[u8]) -> Result<Request, ProtoError> {
    let (mut r, tag) = open_payload(data, "request")?;
    let req = match tag {
        REQ_SUBMIT => Request::SubmitTrace {
            name: r.string()?,
            payload: r.bytes()?,
        },
        REQ_SIMULATE => Request::Simulate {
            trace: TraceId(r.u64()?),
            params: r.string()?,
        },
        REQ_SWEEP => {
            let benches = r.seq(|r| r.string())?;
            let procs = r.seq(|r| r.u32())?;
            Request::Sweep(SweepSpec {
                benches,
                procs,
                scale: r.string()?,
                params: r.string()?,
            })
        }
        REQ_FETCH => Request::FetchResult {
            job: JobId(r.u64()?),
            wait_ms: r.u32()?,
        },
        REQ_EVICT => Request::Evict {
            trace: TraceId(r.u64()?),
        },
        REQ_STATS => Request::Stats,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_PHASES => {
            let trace = TraceId(r.u64()?);
            let phases = match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(ProtoError::Malformed(format!("bad phases flag {other}")));
                }
            };
            Request::Phases {
                trace,
                phases,
                max_clusters: r.u32()?,
                tolerance: r.f64()?,
            }
        }
        REQ_ANALYZE => Request::Analyze {
            trace: TraceId(r.u64()?),
            params: r.string()?,
            format: r.string()?,
        },
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown request tag {other}"
            )))
        }
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

const RSP_SUBMITTED: u8 = 1;
const RSP_ACCEPTED: u8 = 2;
const RSP_PENDING: u8 = 3;
const RSP_PREDICTION: u8 = 4;
const RSP_SWEEP_ROWS: u8 = 5;
const RSP_EVICTED: u8 = 6;
const RSP_STATS: u8 = 7;
const RSP_ERROR: u8 = 8;
const RSP_BYE: u8 = 9;
const RSP_PHASES: u8 = 10;
const RSP_ANALYZED: u8 = 11;

/// Encodes one response as a frame payload (pass to [`write_frame`]).
pub fn encode_response(rsp: &Response) -> Vec<u8> {
    match rsp {
        Response::Submitted {
            trace,
            n_threads,
            resident_bytes,
        } => {
            let mut buf = header(RSP_SUBMITTED);
            buf.put_u64_le(trace.0);
            buf.put_u32_le(*n_threads);
            buf.put_u64_le(*resident_bytes);
            buf
        }
        Response::Accepted { job } => {
            let mut buf = header(RSP_ACCEPTED);
            buf.put_u64_le(job.0);
            buf
        }
        Response::Pending { job } => {
            let mut buf = header(RSP_PENDING);
            buf.put_u64_le(job.0);
            buf
        }
        Response::Prediction(p) => {
            let mut buf = header(RSP_PREDICTION);
            buf.put_u32_le(p.n_threads);
            buf.put_u32_le(p.n_procs);
            buf.put_u64_le(p.exec_time_ns);
            buf.put_u64_le(p.barriers);
            buf.put_u64_le(p.messages);
            buf.put_u64_le(p.bytes);
            buf.put_u64_le(p.contention_factor_sum.to_bits());
            buf.put_u64_le(p.events_dispatched);
            buf.put_u32_le(p.per_thread.len() as u32);
            for b in &p.per_thread {
                buf.put_u64_le(b.compute_ns);
                buf.put_u64_le(b.send_overhead_ns);
                buf.put_u64_le(b.service_ns);
                buf.put_u64_le(b.remote_wait_ns);
                buf.put_u64_le(b.barrier_wait_ns);
                buf.put_u64_le(b.end_time_ns);
            }
            buf
        }
        Response::SweepRows(rows) => {
            let mut buf = header(RSP_SWEEP_ROWS);
            buf.put_u32_le(rows.len() as u32);
            for row in rows {
                put_string(&mut buf, &row.bench);
                buf.put_u32_le(row.procs);
                buf.put_u64_le(row.exec_time_ns);
            }
            buf
        }
        Response::Evicted { freed_bytes } => {
            let mut buf = header(RSP_EVICTED);
            buf.put_u64_le(*freed_bytes);
            buf
        }
        Response::Stats(s) => {
            let mut buf = header(RSP_STATS);
            buf.put_u64_le(s.uptime_ms);
            buf.put_u64_le(s.connections);
            buf.put_u32_le(s.active_connections);
            buf.put_u64_le(s.requests);
            buf.put_u32_le(s.jobs_inflight);
            buf.put_u64_le(s.jobs_done);
            buf.put_u64_le(s.jobs_failed);
            buf.put_u64_le(s.sweep_batches);
            buf.put_u64_le(s.coalesced_sweeps);
            buf.put_u32_le(s.traces_resident);
            buf.put_u64_le(s.resident_bytes);
            buf.put_u64_le(s.mem_budget_bytes);
            buf.put_u64_le(s.evictions);
            buf.put_u64_le(s.translations);
            buf
        }
        Response::Error { code, detail } => {
            let mut buf = header(RSP_ERROR);
            buf.put_u8(code.as_u8());
            put_string(&mut buf, detail);
            buf
        }
        Response::Bye => header(RSP_BYE),
        Response::Phases { text } => {
            let mut buf = header(RSP_PHASES);
            put_string(&mut buf, text);
            buf
        }
        Response::Analyzed { rendered } => {
            let mut buf = header(RSP_ANALYZED);
            put_string(&mut buf, rendered);
            buf
        }
    }
}

/// Decodes one response payload; rejects version mismatches, unknown
/// tags, truncation, and trailing bytes.
pub fn decode_response(data: &[u8]) -> Result<Response, ProtoError> {
    let (mut r, tag) = open_payload(data, "response")?;
    let rsp = match tag {
        RSP_SUBMITTED => Response::Submitted {
            trace: TraceId(r.u64()?),
            n_threads: r.u32()?,
            resident_bytes: r.u64()?,
        },
        RSP_ACCEPTED => Response::Accepted {
            job: JobId(r.u64()?),
        },
        RSP_PENDING => Response::Pending {
            job: JobId(r.u64()?),
        },
        RSP_PREDICTION => {
            let n_threads = r.u32()?;
            let n_procs = r.u32()?;
            let exec_time_ns = r.u64()?;
            let barriers = r.u64()?;
            let messages = r.u64()?;
            let bytes = r.u64()?;
            let contention_factor_sum = r.f64()?;
            let events_dispatched = r.u64()?;
            let per_thread = r.seq(|r| {
                Ok(BreakdownRow {
                    compute_ns: r.u64()?,
                    send_overhead_ns: r.u64()?,
                    service_ns: r.u64()?,
                    remote_wait_ns: r.u64()?,
                    barrier_wait_ns: r.u64()?,
                    end_time_ns: r.u64()?,
                })
            })?;
            Response::Prediction(PredictionSummary {
                n_threads,
                n_procs,
                exec_time_ns,
                barriers,
                messages,
                bytes,
                contention_factor_sum,
                events_dispatched,
                per_thread,
            })
        }
        RSP_SWEEP_ROWS => Response::SweepRows(r.seq(|r| {
            Ok(SweepRow {
                bench: r.string()?,
                procs: r.u32()?,
                exec_time_ns: r.u64()?,
            })
        })?),
        RSP_EVICTED => Response::Evicted {
            freed_bytes: r.u64()?,
        },
        RSP_STATS => Response::Stats(ServerStats {
            uptime_ms: r.u64()?,
            connections: r.u64()?,
            active_connections: r.u32()?,
            requests: r.u64()?,
            jobs_inflight: r.u32()?,
            jobs_done: r.u64()?,
            jobs_failed: r.u64()?,
            sweep_batches: r.u64()?,
            coalesced_sweeps: r.u64()?,
            traces_resident: r.u32()?,
            resident_bytes: r.u64()?,
            mem_budget_bytes: r.u64()?,
            evictions: r.u64()?,
            translations: r.u64()?,
        }),
        RSP_ERROR => {
            let raw = r.u8()?;
            Response::Error {
                code: ErrorCode::from_u8(raw)
                    .ok_or_else(|| ProtoError::Malformed(format!("unknown error code {raw}")))?,
                detail: r.string()?,
            }
        }
        RSP_BYE => Response::Bye,
        RSP_PHASES => Response::Phases { text: r.string()? },
        RSP_ANALYZED => Response::Analyzed {
            rendered: r.string()?,
        },
        other => {
            return Err(ProtoError::Malformed(format!(
                "unknown response tag {other}"
            )))
        }
    };
    r.finish()?;
    Ok(rsp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, b"hello").unwrap();
        write_frame(&mut pipe, b"").unwrap();
        let mut cursor = io::Cursor::new(pipe);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_LEN).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME_LEN).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert!(read_frame(&mut cursor, MAX_FRAME_LEN).unwrap().is_none());
    }

    #[test]
    fn oversize_and_bad_magic_frames_are_rejected() {
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, &[0u8; 32]).unwrap();
        let err = read_frame(&mut io::Cursor::new(&pipe), 16).unwrap_err();
        assert!(matches!(err, ProtoError::TooLarge { len: 32, max: 16 }));

        let mut bad = pipe.clone();
        bad[0] = b'Z';
        let err = read_frame(&mut io::Cursor::new(&bad), MAX_FRAME_LEN).unwrap_err();
        assert!(matches!(err, ProtoError::BadMagic));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut payload = encode_request(&Request::Stats);
        payload[0] = 0xFF;
        payload[1] = 0xFF;
        let err = decode_request(&payload).unwrap_err();
        assert!(matches!(err, ProtoError::Version { got: 0xFFFF }));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(&Request::Stats);
        payload.push(0);
        let err = decode_request(&payload).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn absurd_sequence_counts_fail_before_allocating() {
        // A sweep-rows response claiming u32::MAX rows in a tiny body.
        let mut buf = header(RSP_SWEEP_ROWS);
        buf.put_u32_le(u32::MAX);
        let err = decode_response(&buf).unwrap_err();
        assert!(err.to_string().contains("sequence"), "{err}");
    }
}
