#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # extrap-proto — the extrapolation-service protocol
//!
//! The job-oriented request/response layer every ExtraP-rs surface
//! speaks: the `extrap` CLI, the `extrap-serve` daemon, and in-process
//! callers all submit the same [`Request`] values and consume the same
//! [`Response`] values, instead of each growing its own ad-hoc API over
//! the `Extrapolator`'s entry points.
//!
//! On the wire, values travel as length-prefixed binary frames (see
//! [`wire`]) built on the same `extrap-trace::bytesio` little-endian
//! primitives as the trace file format: a 4-byte magic, a `u32` payload
//! length, then a versioned tagged payload.  The codec is std-only and
//! fully deterministic — encode∘decode is the identity on bytes, which
//! the protocol property tests check with randomized values.
//!
//! The request set mirrors the session workflow the paper's economics
//! suggest (translate/compile once, answer many what-if questions):
//!
//! * [`Request::SubmitTrace`] — upload a trace once, get a [`TraceId`];
//! * [`Request::Simulate`] — one prediction of a submitted trace under
//!   one parameter set (a job; results are fetched by [`JobId`]);
//! * [`Request::Sweep`] — a benchmark × processor grid under one
//!   parameter set (also a job; compatible sweeps are batched
//!   server-side into shared grids);
//! * [`Request::FetchResult`] — poll/wait for a job's outcome;
//! * [`Request::Evict`] / [`Request::Stats`] / [`Request::Shutdown`] —
//!   cache and lifecycle management.

pub mod wire;

use extrap_core::{Prediction, ProcBreakdown};

pub use wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ProtoError, FRAME_MAGIC, MAX_FRAME_LEN, PROTO_VERSION,
};

/// Identifies a trace submitted to (and resident in) a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies an accepted job (simulate or sweep) on a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// A client request.
///
/// Parameter sets travel as `SimParams` config text (the same
/// `key = value` form `extrap params` prints and `--params` files use),
/// so the wire format never chases the parameter struct: unknown keys
/// are rejected by the same parser everywhere.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Upload a trace file image (`XTRP` program trace or `XTPS`
    /// translated set; the server sniffs the magic, translating program
    /// traces with default options).  Responds [`Response::Submitted`].
    SubmitTrace {
        /// Caller's label for the trace (diagnostics only).
        name: String,
        /// The trace file bytes, exactly as stored on disk.
        payload: Vec<u8>,
    },
    /// Extrapolate a submitted trace under one parameter set.
    /// Responds [`Response::Accepted`]; fetch the
    /// [`Response::Prediction`] with [`Request::FetchResult`].
    Simulate {
        /// The trace to replay.
        trace: TraceId,
        /// Parameter set as config text (empty = defaults).
        params: String,
    },
    /// Extrapolate a named-benchmark grid under one parameter set.
    /// Responds [`Response::Accepted`]; fetch the
    /// [`Response::SweepRows`] with [`Request::FetchResult`].
    Sweep(SweepSpec),
    /// Poll for a job's result, waiting server-side up to `wait_ms`
    /// before answering [`Response::Pending`].  Results are consumed by
    /// the fetch that delivers them.
    FetchResult {
        /// The job to poll.
        job: JobId,
        /// Longest the server may hold the request open (milliseconds).
        wait_ms: u32,
    },
    /// Drop a submitted trace. Responds [`Response::Evicted`].
    Evict {
        /// The trace to drop.
        trace: TraceId,
    },
    /// Server statistics. Responds [`Response::Stats`].
    Stats,
    /// Begin graceful shutdown: in-flight jobs drain, new work is
    /// refused. Responds [`Response::Bye`].
    Shutdown,
    /// The `extrap stats` report of a submitted trace — marker phases
    /// plus (with `phases`) the barrier-epoch cluster table.  Answered
    /// synchronously with [`Response::Phases`], whose text is
    /// byte-identical to the local `extrap stats` output (both sides
    /// call the same renderer).
    Phases {
        /// The trace to profile.
        trace: TraceId,
        /// Include the barrier-epoch cluster table (`--phases`).
        phases: bool,
        /// Cluster budget (`--max-clusters`).
        max_clusters: u32,
        /// Signature-distance tolerance (`--tolerance`).
        tolerance: f64,
    },
    /// Static work/span bound analysis of a submitted trace under one
    /// parameter set — no simulation runs.  Answered synchronously with
    /// [`Response::Analyzed`].
    Analyze {
        /// The trace to analyze.
        trace: TraceId,
        /// Parameter set as config text (empty = defaults).
        params: String,
        /// Render format (`text` | `json` | `csv`).
        format: String,
    },
}

/// The grid one [`Request::Sweep`] asks for — the wire form of
/// `extrap sweep <benches> --procs ... --scale ...`.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Benchmark names (see `extrap benches`).
    pub benches: Vec<String>,
    /// Processor counts.
    pub procs: Vec<u32>,
    /// Problem scale (`tiny` | `small` | `paper`).
    pub scale: String,
    /// Parameter set as config text (empty = defaults).
    pub params: String,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A trace was stored.
    Submitted {
        /// Handle for later [`Request::Simulate`] / [`Request::Evict`].
        trace: TraceId,
        /// Threads in the (translated) trace.
        n_threads: u32,
        /// What the resident entry is charged against the memory budget.
        resident_bytes: u64,
    },
    /// A job was queued.
    Accepted {
        /// Handle for [`Request::FetchResult`].
        job: JobId,
    },
    /// The job exists but has not finished inside the fetch's wait.
    Pending {
        /// The polled job.
        job: JobId,
    },
    /// A finished [`Request::Simulate`] job's metrics.
    Prediction(PredictionSummary),
    /// A finished [`Request::Sweep`] job's grid, in job order
    /// (`benches` major, `procs` minor — the same order `extrap sweep`
    /// prints).
    SweepRows(Vec<SweepRow>),
    /// A trace was dropped.
    Evicted {
        /// Bytes the entry was holding.
        freed_bytes: u64,
    },
    /// Server statistics.
    Stats(ServerStats),
    /// The request failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Acknowledges [`Request::Shutdown`].
    Bye,
    /// A [`Request::Phases`] report, rendered server-side by the same
    /// code path as local `extrap stats`.
    Phases {
        /// The rendered report.
        text: String,
    },
    /// A [`Request::Analyze`] result, rendered server-side by the same
    /// code path as local `extrap analyze`.
    Analyzed {
        /// The rendered analysis in the requested format.
        rendered: String,
    },
}

/// Machine-readable failure classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed or semantically invalid.
    BadRequest,
    /// The referenced trace is not resident (never submitted, or
    /// evicted under memory pressure).
    UnknownTrace,
    /// The referenced job does not exist (never accepted, or its result
    /// was already fetched).
    UnknownJob,
    /// The server is at capacity; retry later (backpressure).
    Busy,
    /// The job or request exceeded its deadline.
    Timeout,
    /// The server is draining and refuses new work.
    ShuttingDown,
    /// The pipeline failed internally (simulation error, poisoned
    /// state); detail carries the rendered cause.
    Internal,
}

impl ErrorCode {
    /// Stable wire value.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnknownTrace => 2,
            ErrorCode::UnknownJob => 3,
            ErrorCode::Busy => 4,
            ErrorCode::Timeout => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
        }
    }

    /// Inverse of [`as_u8`](ErrorCode::as_u8).
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::UnknownTrace,
            3 => ErrorCode::UnknownJob,
            4 => ErrorCode::Busy,
            5 => ErrorCode::Timeout,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownTrace => "unknown-trace",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::Busy => "busy",
            ErrorCode::Timeout => "timeout",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// One sweep grid point: `(bench, procs)` and its predicted execution
/// time in exact integer nanoseconds, so clients can re-derive any
/// float rendering (CSV milliseconds included) byte-identically to the
/// in-process pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepRow {
    /// Benchmark name.
    pub bench: String,
    /// Processor count.
    pub procs: u32,
    /// Predicted execution time, integer nanoseconds.
    pub exec_time_ns: u64,
}

/// Per-thread slice of a [`PredictionSummary`], all times in exact
/// integer nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct BreakdownRow {
    /// Scaled computation time.
    pub compute_ns: u64,
    /// Message construction + startup overhead.
    pub send_overhead_ns: u64,
    /// Time servicing other threads' remote requests.
    pub service_ns: u64,
    /// Time blocked on remote-read replies.
    pub remote_wait_ns: u64,
    /// Time waiting inside barriers.
    pub barrier_wait_ns: u64,
    /// Predicted completion time.
    pub end_time_ns: u64,
}

/// The scalar metrics of one prediction — everything `extrap simulate`
/// prints, without the (potentially huge) predicted trace.  Service
/// jobs run `RecordMode::MetricsOnly`, so this is also exactly what the
/// server computes.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictionSummary {
    /// Threads in the program.
    pub n_threads: u32,
    /// Processors of the target machine.
    pub n_procs: u32,
    /// Predicted execution time, integer nanoseconds.
    pub exec_time_ns: u64,
    /// Barriers completed.
    pub barriers: u64,
    /// Messages injected into the interconnect.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Sum of contention delay factors over all messages (mean factor
    /// = `contention_factor_sum / messages`); transported as exact
    /// `f64` bits.
    pub contention_factor_sum: f64,
    /// Simulator events dispatched (extrapolation cost metric).
    pub events_dispatched: u64,
    /// Per-thread time breakdown.
    pub per_thread: Vec<BreakdownRow>,
}

impl PredictionSummary {
    /// Mean contention delay factor across all messages (1.0 if none).
    pub fn mean_contention_factor(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.contention_factor_sum / self.messages as f64
        }
    }
}

impl From<&Prediction> for PredictionSummary {
    fn from(p: &Prediction) -> PredictionSummary {
        PredictionSummary {
            n_threads: p.n_threads as u32,
            n_procs: p.n_procs as u32,
            exec_time_ns: p.exec_time().as_ns(),
            barriers: p.barriers as u64,
            messages: p.network.messages,
            bytes: p.network.bytes,
            contention_factor_sum: p.network.factor_sum,
            events_dispatched: p.events_dispatched,
            per_thread: p.per_thread.iter().map(BreakdownRow::from).collect(),
        }
    }
}

impl From<&ProcBreakdown> for BreakdownRow {
    fn from(b: &ProcBreakdown) -> BreakdownRow {
        BreakdownRow {
            compute_ns: b.compute.0,
            send_overhead_ns: b.send_overhead.0,
            service_ns: b.service.0,
            remote_wait_ns: b.remote_wait.0,
            barrier_wait_ns: b.barrier_wait.0,
            end_time_ns: b.end_time.0,
        }
    }
}

/// Counters one [`Response::Stats`] reports.  All cumulative unless
/// noted; gauges are point-in-time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Currently open connections (gauge).
    pub active_connections: u32,
    /// Requests handled.
    pub requests: u64,
    /// Jobs waiting or running (gauge).
    pub jobs_inflight: u32,
    /// Jobs completed successfully.
    pub jobs_done: u64,
    /// Jobs completed with an error.
    pub jobs_failed: u64,
    /// Sweep batches executed (each covers ≥ 1 coalesced sweep job).
    pub sweep_batches: u64,
    /// Sweep jobs that rode a batch started by another job.
    pub coalesced_sweeps: u64,
    /// Submitted traces currently resident (gauge).
    pub traces_resident: u32,
    /// Bytes resident across submitted traces and the sweep cache
    /// (gauge).
    pub resident_bytes: u64,
    /// Configured memory budget in bytes (0 = unlimited).
    pub mem_budget_bytes: u64,
    /// Entries evicted (LRU budget sweeps + explicit evicts).
    pub evictions: u64,
    /// Trace translations run by the sweep cache.
    pub translations: u64,
}
