//! Protocol round-trip property tests: randomized `Request`/`Response`
//! values survive encode → decode → re-encode bit-identically, and
//! truncated or corrupted frames are rejected — never misparsed.
//!
//! Randomness comes from a seeded SplitMix64, so every run checks the
//! same cases and a failure seed reproduces exactly.

use extrap_proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    BreakdownRow, ErrorCode, JobId, PredictionSummary, ProtoError, Request, Response, ServerStats,
    SweepRow, SweepSpec, TraceId, FRAME_MAGIC, MAX_FRAME_LEN, PROTO_VERSION,
};

/// SplitMix64 — tiny, seedable, and good enough to exercise the codec.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// An arbitrary f64 bit pattern — including NaNs, infinities, and
    /// subnormals; the wire carries exact bits, so all must survive.
    fn f64_bits(&mut self) -> f64 {
        f64::from_bits(self.next())
    }

    /// An arbitrary non-NaN f64 — for fields in `PartialEq`-asserted
    /// values, where NaN would break the equality check rather than the
    /// codec (see `nan_tolerance_survives_exactly` for the NaN case).
    fn f64_non_nan(&mut self) -> f64 {
        loop {
            let v = self.f64_bits();
            if !v.is_nan() {
                return v;
            }
        }
    }

    /// A string over a small alphabet plus some non-ASCII, length 0..32.
    fn string(&mut self) -> String {
        const ALPHABET: &[char] = &['a', 'Z', '0', ' ', ',', '=', '\n', '"', 'é', '√', '\u{0}'];
        let len = self.below(32) as usize;
        (0..len)
            .map(|_| ALPHABET[self.below(ALPHABET.len() as u64) as usize])
            .collect()
    }

    fn bytes(&mut self) -> Vec<u8> {
        let len = self.below(64) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn random_spec(rng: &mut Rng) -> SweepSpec {
    SweepSpec {
        benches: (0..rng.below(5)).map(|_| rng.string()).collect(),
        procs: (0..rng.below(8)).map(|_| rng.next() as u32).collect(),
        scale: rng.string(),
        params: rng.string(),
    }
}

fn random_request(rng: &mut Rng) -> Request {
    match rng.below(9) {
        0 => Request::SubmitTrace {
            name: rng.string(),
            payload: rng.bytes(),
        },
        1 => Request::Simulate {
            trace: TraceId(rng.next()),
            params: rng.string(),
        },
        2 => Request::Sweep(random_spec(rng)),
        3 => Request::FetchResult {
            job: JobId(rng.next()),
            wait_ms: rng.next() as u32,
        },
        4 => Request::Evict {
            trace: TraceId(rng.next()),
        },
        5 => Request::Stats,
        6 => Request::Phases {
            trace: TraceId(rng.next()),
            phases: rng.below(2) == 1,
            max_clusters: rng.next() as u32,
            tolerance: rng.f64_non_nan(),
        },
        7 => Request::Analyze {
            trace: TraceId(rng.next()),
            params: rng.string(),
            format: rng.string(),
        },
        _ => Request::Shutdown,
    }
}

fn random_summary(rng: &mut Rng) -> PredictionSummary {
    PredictionSummary {
        n_threads: rng.next() as u32,
        n_procs: rng.next() as u32,
        exec_time_ns: rng.next(),
        barriers: rng.next(),
        messages: rng.next(),
        bytes: rng.next(),
        contention_factor_sum: rng.f64_bits(),
        events_dispatched: rng.next(),
        per_thread: (0..rng.below(6))
            .map(|_| BreakdownRow {
                compute_ns: rng.next(),
                send_overhead_ns: rng.next(),
                service_ns: rng.next(),
                remote_wait_ns: rng.next(),
                barrier_wait_ns: rng.next(),
                end_time_ns: rng.next(),
            })
            .collect(),
    }
}

fn random_error_code(rng: &mut Rng) -> ErrorCode {
    [
        ErrorCode::BadRequest,
        ErrorCode::UnknownTrace,
        ErrorCode::UnknownJob,
        ErrorCode::Busy,
        ErrorCode::Timeout,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ][rng.below(7) as usize]
}

fn random_response(rng: &mut Rng) -> Response {
    match rng.below(11) {
        0 => Response::Submitted {
            trace: TraceId(rng.next()),
            n_threads: rng.next() as u32,
            resident_bytes: rng.next(),
        },
        1 => Response::Accepted {
            job: JobId(rng.next()),
        },
        2 => Response::Pending {
            job: JobId(rng.next()),
        },
        3 => Response::Prediction(random_summary(rng)),
        4 => Response::SweepRows(
            (0..rng.below(10))
                .map(|_| SweepRow {
                    bench: rng.string(),
                    procs: rng.next() as u32,
                    exec_time_ns: rng.next(),
                })
                .collect(),
        ),
        5 => Response::Evicted {
            freed_bytes: rng.next(),
        },
        6 => Response::Stats(ServerStats {
            uptime_ms: rng.next(),
            connections: rng.next(),
            active_connections: rng.next() as u32,
            requests: rng.next(),
            jobs_inflight: rng.next() as u32,
            jobs_done: rng.next(),
            jobs_failed: rng.next(),
            sweep_batches: rng.next(),
            coalesced_sweeps: rng.next(),
            traces_resident: rng.next() as u32,
            resident_bytes: rng.next(),
            mem_budget_bytes: rng.next(),
            evictions: rng.next(),
            translations: rng.next(),
        }),
        7 => Response::Error {
            code: random_error_code(rng),
            detail: rng.string(),
        },
        8 => Response::Phases { text: rng.string() },
        9 => Response::Analyzed {
            rendered: rng.string(),
        },
        _ => Response::Bye,
    }
}

#[test]
fn random_requests_roundtrip_bit_identically() {
    let mut rng = Rng(0x5eed_0001);
    for i in 0..500 {
        let req = random_request(&mut rng);
        let wire = encode_request(&req);
        let back = decode_request(&wire).unwrap_or_else(|e| panic!("case {i}: {e}\n{req:?}"));
        assert_eq!(back, req, "case {i}: decode changed the value");
        assert_eq!(
            encode_request(&back),
            wire,
            "case {i}: re-encode changed the bytes"
        );
    }
}

#[test]
fn random_responses_roundtrip_bit_identically() {
    let mut rng = Rng(0x5eed_0002);
    for i in 0..500 {
        let rsp = random_response(&mut rng);
        let wire = encode_response(&rsp);
        let back = decode_response(&wire).unwrap_or_else(|e| panic!("case {i}: {e}\n{rsp:?}"));
        // `Response` contains raw f64 bits; PartialEq would call NaN !=
        // NaN, so compare the canonical wire image instead (Debug on
        // the side for diagnostics).
        assert_eq!(
            encode_response(&back),
            wire,
            "case {i}: re-encode changed the bytes\n{rsp:?}"
        );
    }
}

#[test]
fn nan_contention_sum_survives_exactly() {
    let mut summary = random_summary(&mut Rng(7));
    summary.contention_factor_sum = f64::from_bits(0x7ff8_dead_beef_0001);
    let wire = encode_response(&Response::Prediction(summary));
    match decode_response(&wire).unwrap() {
        Response::Prediction(p) => {
            assert_eq!(p.contention_factor_sum.to_bits(), 0x7ff8_dead_beef_0001)
        }
        other => panic!("expected Prediction, got {other:?}"),
    }
}

#[test]
fn nan_tolerance_survives_exactly() {
    let req = Request::Phases {
        trace: TraceId(7),
        phases: true,
        max_clusters: 64,
        tolerance: f64::from_bits(0x7ff8_dead_beef_0002),
    };
    let wire = encode_request(&req);
    match decode_request(&wire).unwrap() {
        Request::Phases { tolerance, .. } => {
            assert_eq!(tolerance.to_bits(), 0x7ff8_dead_beef_0002)
        }
        other => panic!("expected Phases, got {other:?}"),
    }
    assert_eq!(encode_request(&decode_request(&wire).unwrap()), wire);
}

#[test]
fn every_truncation_of_a_payload_is_rejected() {
    let mut rng = Rng(0x5eed_0003);
    for _ in 0..50 {
        let wire = encode_request(&random_request(&mut rng));
        for cut in 0..wire.len() {
            assert!(
                decode_request(&wire[..cut]).is_err(),
                "truncation to {cut}/{} bytes must not parse",
                wire.len()
            );
        }
        let wire = encode_response(&random_response(&mut rng));
        for cut in 0..wire.len() {
            assert!(
                decode_response(&wire[..cut]).is_err(),
                "truncation to {cut}/{} bytes must not parse",
                wire.len()
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut rng = Rng(0x5eed_0004);
    for _ in 0..50 {
        let mut wire = encode_request(&random_request(&mut rng));
        wire.push(0);
        assert!(decode_request(&wire).is_err(), "trailing byte must reject");
        let mut wire = encode_response(&random_response(&mut rng));
        wire.push(0);
        assert!(decode_response(&wire).is_err(), "trailing byte must reject");
    }
}

#[test]
fn frames_roundtrip_and_truncated_frames_are_rejected() {
    let payload = encode_request(&Request::Stats);
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload).unwrap();
    assert_eq!(&buf[..4], &FRAME_MAGIC);

    // Full frame reads back; the stream then reports clean EOF.
    let mut r = &buf[..];
    assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), Some(payload));
    assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), None);

    // EOF anywhere inside a frame is an error, not a short read.
    for cut in 1..buf.len() {
        let mut r = &buf[..cut];
        assert!(
            read_frame(&mut r, MAX_FRAME_LEN).is_err(),
            "cut at {cut}/{} must error",
            buf.len()
        );
    }
}

#[test]
fn bad_magic_oversize_and_wrong_version_are_rejected() {
    let payload = encode_request(&Request::Stats);
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload).unwrap();

    let mut corrupted = buf.clone();
    corrupted[0] ^= 0xff;
    assert!(matches!(
        read_frame(&mut &corrupted[..], MAX_FRAME_LEN),
        Err(ProtoError::BadMagic)
    ));

    // A length field past the cap is refused before any allocation.
    let mut oversize = buf.clone();
    oversize[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        read_frame(&mut &oversize[..], MAX_FRAME_LEN),
        Err(ProtoError::TooLarge { len: u32::MAX, .. })
    ));

    // A future protocol revision is a Version error, not Malformed.
    let mut future = payload.clone();
    future[..2].copy_from_slice(&(PROTO_VERSION + 1).to_le_bytes());
    assert!(matches!(
        decode_request(&future),
        Err(ProtoError::Version { got }) if got == PROTO_VERSION + 1
    ));
}
