//! A dependency-free benchmark harness (`std::time::Instant` based) for
//! the `harness = false` bench targets.
//!
//! Each target builds a [`Harness`], registers closures with
//! [`Harness::bench`], and calls [`Harness::finish`].  Per benchmark the
//! harness warms up, then times batches until it has both a minimum
//! sample count and a minimum total measurement time, and reports the
//! median/mean/min time per iteration (plus derived throughput when a
//! [`Throughput`] is given).  Positional command-line arguments act as
//! substring filters, matching `cargo bench -- <filter>` usage.

use std::time::{Duration, Instant};

/// What one iteration processes, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements (events, records) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

struct Record {
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
}

/// The benchmark runner for one bench target.
pub struct Harness {
    filters: Vec<String>,
    min_samples: usize,
    min_total: Duration,
    results: Vec<Record>,
}

impl Harness {
    /// A harness configured from the process arguments: positional
    /// arguments are substring filters, `--quick` cuts the measurement
    /// budget, and cargo's own `--bench` flag is ignored.
    pub fn from_args(target: &str) -> Harness {
        let mut filters = Vec::new();
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--exact" => {}
                "--quick" => quick = true,
                a if a.starts_with("--") => {}
                other => filters.push(other.to_string()),
            }
        }
        println!("## {target}");
        Harness {
            filters,
            min_samples: if quick { 5 } else { 20 },
            min_total: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(300)
            },
            results: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Times `f`, recording one result row under `name`.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_throughput_opt(name, None, f);
    }

    /// Times `f` and additionally reports `per_iter` worth of derived
    /// throughput.
    pub fn bench_throughput<R>(&mut self, name: &str, per_iter: Throughput, f: impl FnMut() -> R) {
        self.bench_throughput_opt(name, Some(per_iter), f);
    }

    fn bench_throughput_opt<R>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut() -> R,
    ) {
        if !self.selected(name) {
            return;
        }
        // Warm-up, and pick a batch size aiming at ~1 ms per sample so
        // Instant overhead stays negligible for nanosecond-scale bodies.
        let warmup = Instant::now();
        std::hint::black_box(f());
        let once = warmup.elapsed();
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1))
            .clamp(1, 1_000_000) as usize;

        let mut samples_ns: Vec<f64> = Vec::new();
        let started = Instant::now();
        while samples_ns.len() < self.min_samples || started.elapsed() < self.min_total {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if samples_ns.len() >= 10_000 {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.results.push(Record {
            name: name.to_string(),
            median_ns,
            mean_ns,
            min_ns: samples_ns[0],
            samples: samples_ns.len(),
            throughput,
        });
    }

    /// Prints the result table.  Call once, last.
    pub fn finish(self) {
        println!(
            "{:44} {:>12} {:>12} {:>12} {:>8}  throughput",
            "benchmark", "median", "mean", "min", "samples"
        );
        for r in &self.results {
            let tp = match r.throughput {
                None => String::new(),
                Some(Throughput::Elements(n)) => {
                    format!("{:.1} Melem/s", n as f64 / r.median_ns * 1_000.0)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("{:.1} MB/s", n as f64 / r.median_ns * 1_000.0)
                }
            };
            println!(
                "{:44} {:>12} {:>12} {:>12} {:>8}  {}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                r.samples,
                tp
            );
        }
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut h = Harness {
            filters: vec![],
            min_samples: 3,
            min_total: Duration::from_millis(1),
            results: Vec::new(),
        };
        let mut count = 0u64;
        h.bench("spin", || {
            count += 1;
            std::hint::black_box(count)
        });
        assert_eq!(h.results.len(), 1);
        assert!(h.results[0].median_ns > 0.0);
        assert!(count > 0);
        h.finish();
    }

    #[test]
    fn filters_skip_unmatched_names() {
        let mut h = Harness {
            filters: vec!["match-me".into()],
            min_samples: 1,
            min_total: Duration::ZERO,
            results: Vec::new(),
        };
        h.bench("something-else", || 1);
        assert!(h.results.is_empty());
        h.bench("does match-me indeed", || 1);
        assert_eq!(h.results.len(), 1);
    }

    #[test]
    fn formats_cover_the_ranges() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
