//! A dependency-free benchmark harness (`std::time::Instant` based) for
//! the `harness = false` bench targets.
//!
//! Each target builds a [`Harness`], registers closures with
//! [`Harness::bench`], and calls [`Harness::finish`].  Per benchmark the
//! harness warms up, then times batches until it has both a minimum
//! sample count and a minimum total measurement time, and reports the
//! median/mean/min time per iteration (plus derived throughput when a
//! [`Throughput`] is given).  Positional command-line arguments act as
//! substring filters, matching `cargo bench -- <filter>` usage, and
//! `--json <path>` additionally writes the results as machine-readable
//! JSON (hand-rolled; the build container has no serde) for trend
//! tracking and the CI regression gate.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// What one iteration processes, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements (events, records) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

struct Record {
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    throughput: Option<Throughput>,
}

/// The benchmark runner for one bench target.
pub struct Harness {
    target: String,
    filters: Vec<String>,
    min_samples: usize,
    min_total: Duration,
    quick: bool,
    json_path: Option<String>,
    results: Vec<Record>,
}

impl Harness {
    /// A harness configured from the process arguments: positional
    /// arguments are substring filters, `--quick` cuts the measurement
    /// budget, `--json <path>` writes machine-readable results, and
    /// cargo's own `--bench` flag is ignored.
    pub fn from_args(target: &str) -> Harness {
        let mut filters = Vec::new();
        let mut quick = false;
        let mut json_path = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--exact" => {}
                "--quick" => quick = true,
                "--json" => json_path = args.next(),
                // Value-taking flags parsed by the bench targets
                // themselves (e.g. `sweep`'s pool size and problem
                // scale, `serve`'s client count); consume the value
                // here so it is not mistaken for a benchmark-name
                // filter.
                "--workers" | "--scale" | "--clients" => {
                    let _ = args.next();
                }
                a if a.starts_with("--") => {}
                other => filters.push(other.to_string()),
            }
        }
        println!("## {target}");
        Harness {
            target: target.to_string(),
            filters,
            min_samples: if quick { 5 } else { 20 },
            min_total: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(300)
            },
            quick,
            json_path,
            results: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Times `f`, recording one result row under `name`.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.bench_throughput_opt(name, None, f);
    }

    /// Times `f` and additionally reports `per_iter` worth of derived
    /// throughput.
    pub fn bench_throughput<R>(&mut self, name: &str, per_iter: Throughput, f: impl FnMut() -> R) {
        self.bench_throughput_opt(name, Some(per_iter), f);
    }

    /// Records externally measured samples (nanoseconds per operation)
    /// under `name`.  For benchmarks whose driver must own the clock —
    /// e.g. a load generator collecting per-request latencies across
    /// hundreds of concurrent clients — where timing a closure from the
    /// outside would only ever see the aggregate.  Skipped (like
    /// [`bench`](Harness::bench)) when `name` fails the filters;
    /// ignored when `samples_ns` is empty.
    pub fn record_samples(
        &mut self,
        name: &str,
        samples_ns: &[f64],
        throughput: Option<Throughput>,
    ) {
        if !self.selected(name) || samples_ns.is_empty() {
            return;
        }
        let mut sorted = samples_ns.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.results.push(Record {
            name: name.to_string(),
            median_ns: sorted[sorted.len() / 2],
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min_ns: sorted[0],
            samples: sorted.len(),
            throughput,
        });
    }

    fn bench_throughput_opt<R>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut() -> R,
    ) {
        if !self.selected(name) {
            return;
        }
        // Warm-up, and pick a batch size aiming at ~1 ms per sample so
        // Instant overhead stays negligible for nanosecond-scale bodies.
        let warmup = Instant::now();
        std::hint::black_box(f());
        let once = warmup.elapsed();
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1))
            .clamp(1, 1_000_000) as usize;

        let mut samples_ns: Vec<f64> = Vec::new();
        let started = Instant::now();
        while samples_ns.len() < self.min_samples || started.elapsed() < self.min_total {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if samples_ns.len() >= 10_000 {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.results.push(Record {
            name: name.to_string(),
            median_ns,
            mean_ns,
            min_ns: samples_ns[0],
            samples: samples_ns.len(),
            throughput,
        });
    }

    /// Prints the result table (and writes the JSON file when `--json`
    /// was given).  Call once, last.
    pub fn finish(self) {
        println!(
            "{:44} {:>12} {:>12} {:>12} {:>8}  throughput",
            "benchmark", "median", "mean", "min", "samples"
        );
        for r in &self.results {
            let tp = match r.throughput {
                None => String::new(),
                Some(Throughput::Elements(n)) => {
                    format!("{:.1} Melem/s", n as f64 / r.median_ns * 1_000.0)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("{:.1} MB/s", n as f64 / r.median_ns * 1_000.0)
                }
            };
            println!(
                "{:44} {:>12} {:>12} {:>12} {:>8}  {}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                r.samples,
                tp
            );
        }
        println!();
        if let Some(path) = &self.json_path {
            match std::fs::write(path, self.to_json()) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }

    /// The results as a JSON document: target, measurement mode, and one
    /// object per benchmark with median/mean/min ns, sample count, and
    /// derived throughput (elements or bytes per second) when declared.
    fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"target\": \"{}\",", escape_json(&self.target));
        let _ = writeln!(s, "  \"quick\": {},", self.quick);
        let _ = writeln!(s, "  \"benches\": [");
        for (i, r) in self.results.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"name\": \"{}\",", escape_json(&r.name));
            let _ = writeln!(s, "      \"median_ns\": {:.1},", r.median_ns);
            let _ = writeln!(s, "      \"mean_ns\": {:.1},", r.mean_ns);
            let _ = writeln!(s, "      \"min_ns\": {:.1},", r.min_ns);
            let _ = writeln!(s, "      \"samples\": {},", r.samples);
            match r.throughput {
                None => {
                    let _ = writeln!(s, "      \"throughput\": null");
                }
                Some(Throughput::Elements(n)) => {
                    let _ = writeln!(
                        s,
                        "      \"throughput\": {{ \"unit\": \"elements_per_s\", \"value\": {:.1} }}",
                        n as f64 / r.median_ns * 1e9
                    );
                }
                Some(Throughput::Bytes(n)) => {
                    let _ = writeln!(
                        s,
                        "      \"throughput\": {{ \"unit\": \"bytes_per_s\", \"value\": {:.1} }}",
                        n as f64 / r.median_ns * 1e9
                    );
                }
            }
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_harness(filters: Vec<String>) -> Harness {
        Harness {
            target: "test".into(),
            filters,
            min_samples: 3,
            min_total: Duration::from_millis(1),
            quick: true,
            json_path: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn harness_times_and_reports() {
        let mut h = test_harness(vec![]);
        let mut count = 0u64;
        h.bench("spin", || {
            count += 1;
            std::hint::black_box(count)
        });
        assert_eq!(h.results.len(), 1);
        assert!(h.results[0].median_ns > 0.0);
        assert!(count > 0);
        h.finish();
    }

    #[test]
    fn filters_skip_unmatched_names() {
        let mut h = test_harness(vec!["match-me".into()]);
        h.min_samples = 1;
        h.min_total = Duration::ZERO;
        h.bench("something-else", || 1);
        assert!(h.results.is_empty());
        h.bench("does match-me indeed", || 1);
        assert_eq!(h.results.len(), 1);
    }

    #[test]
    fn json_output_has_one_object_per_bench() {
        let mut h = test_harness(vec![]);
        h.results.push(Record {
            name: "alpha".into(),
            median_ns: 1234.5,
            mean_ns: 1300.0,
            min_ns: 1200.0,
            samples: 17,
            throughput: Some(Throughput::Elements(1000)),
        });
        h.results.push(Record {
            name: "beta \"quoted\"".into(),
            median_ns: 5.0,
            mean_ns: 6.0,
            min_ns: 4.0,
            samples: 3,
            throughput: None,
        });
        let json = h.to_json();
        assert!(json.contains("\"target\": \"test\""));
        assert!(json.contains("\"name\": \"alpha\""));
        assert!(json.contains("\"median_ns\": 1234.5"));
        assert!(json.contains("\"unit\": \"elements_per_s\""));
        assert!(json.contains("\"beta \\\"quoted\\\"\""));
        assert!(json.contains("\"throughput\": null"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_writes_to_the_requested_path() {
        let path = std::env::temp_dir().join("extrap_bench_harness_test.json");
        let mut h = test_harness(vec![]);
        h.json_path = Some(path.to_string_lossy().into_owned());
        h.min_samples = 1;
        h.min_total = Duration::ZERO;
        h.bench("one", || 1);
        h.finish();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"name\": \"one\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_samples_reports_order_statistics() {
        let mut h = test_harness(vec![]);
        h.record_samples("latency", &[30.0, 10.0, 20.0], None);
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].median_ns, 20.0);
        assert_eq!(h.results[0].min_ns, 10.0);
        assert_eq!(h.results[0].mean_ns, 20.0);
        assert_eq!(h.results[0].samples, 3);
        // Empty sample sets and filtered names record nothing.
        h.record_samples("empty", &[], None);
        assert_eq!(h.results.len(), 1);
        let mut h = test_harness(vec!["other".into()]);
        h.record_samples("latency", &[1.0], None);
        assert!(h.results.is_empty());
    }

    #[test]
    fn formats_cover_the_ranges() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
