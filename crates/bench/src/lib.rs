#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Shared fixtures and the std-only timing harness for the bench
//! targets.

pub mod harness;

use extrap_time::{DurationNs, ElementId, ThreadId};
use extrap_trace::{PhaseAccess, PhaseProgram, PhaseWork, ProgramTrace, TraceSet};
use extrap_workloads::{Bench, Scale};

/// A synthetic neighbour-exchange program: `n` threads, `phases` phases
/// of `us` µs compute with one remote read of `bytes` each.
pub fn ring_program(n: usize, phases: usize, us: f64, bytes: u32) -> ProgramTrace {
    let mut p = PhaseProgram::new(n);
    for _ in 0..phases {
        let work = (0..n)
            .map(|t| PhaseWork {
                compute: DurationNs::from_us(us),
                accesses: vec![PhaseAccess {
                    after: DurationNs::from_us(us / 2.0),
                    owner: ThreadId::from_index((t + 1) % n),
                    element: ElementId::from_index(t),
                    declared_bytes: bytes,
                    actual_bytes: bytes,
                    write: false,
                }],
            })
            .collect();
        p.push_phase(work);
    }
    p.record()
}

/// The translated form of [`ring_program`].
pub fn ring_traces(n: usize, phases: usize, us: f64, bytes: u32) -> TraceSet {
    extrap_trace::translate(&ring_program(n, phases, us, bytes), Default::default())
        .expect("ring program translates")
}

/// Tiny-scale translated traces of the full benchmark suite at `procs`.
pub fn suite_traces(procs: usize) -> Vec<(&'static str, TraceSet)> {
    Bench::all()
        .into_iter()
        .map(|b| {
            let ts = extrap_trace::translate(&b.trace(procs, Scale::Tiny), Default::default())
                .expect("suite trace translates");
            (b.name(), ts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let ts = ring_traces(4, 2, 10.0, 64);
        assert_eq!(ts.n_threads(), 4);
        assert_eq!(suite_traces(2).len(), 7);
    }
}
