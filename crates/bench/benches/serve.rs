//! Load generator for the `extrap-serve` daemon: hundreds of concurrent
//! clients replaying a submit → simulate → sweep → fetch session against
//! a real server on a loopback ephemeral port, through the real
//! [`Client`].  Per-request latencies are collected client-side and fed
//! to the harness, so the JSON baseline (`BENCH_serve.json`) rides the
//! same CI regression gate as the compute benches.
//!
//! Any failed request fails the whole run (`Busy` backpressure answers
//! are retried, as the protocol intends; everything else is a bug).
//!
//!     cargo bench -p extrap-bench --bench serve -- --clients 200
//!     cargo bench -p extrap-bench --bench serve -- --quick --json out.json

use extrap_bench::harness::Harness;
use extrap_proto::SweepSpec;
use extrap_serve::client::Client;
use extrap_serve::{ServeConfig, Server};
use extrap_time::DurationNs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Per-client latency record: one sample per request kind, in the order
/// the session issues them.
struct SessionSample {
    submit_ns: f64,
    simulate_ns: f64,
    sweep_ns: f64,
    session_ns: f64,
}

/// The trace image every client uploads: a small two-phase program,
/// translated, as `XTPS` bytes.
fn payload() -> Vec<u8> {
    let mut p = extrap_trace::PhaseProgram::new(4);
    p.push_uniform_phase(DurationNs::from_us(200.0));
    p.push_uniform_phase(DurationNs::from_us(80.0));
    let set = extrap_trace::translate(&p.record(), Default::default()).expect("translate");
    extrap_trace::format::encode_set(&set)
}

fn sweep_spec() -> SweepSpec {
    SweepSpec {
        benches: vec!["Poisson".to_string()],
        procs: vec![1, 2, 4],
        scale: "tiny".to_string(),
        params: String::new(),
    }
}

/// One client's session.  `Busy` answers retry with a short pause —
/// that is the protocol's documented backpressure contract — and the
/// retry count is reported so a pathological server can't hide behind
/// infinite patience.
fn run_session(
    addr: &str,
    start: &Barrier,
    image: &[u8],
    busy_retries: &AtomicU64,
) -> Result<SessionSample, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    start.wait();
    let session = Instant::now();

    let t = Instant::now();
    let (trace, _, _) = client
        .submit_trace("loadgen", image.to_vec())
        .map_err(|e| format!("submit: {e}"))?;
    let submit_ns = t.elapsed().as_nanos() as f64;

    let t = Instant::now();
    let simulate_ns = loop {
        match client.simulate(trace, "") {
            Ok(_) => break t.elapsed().as_nanos() as f64,
            Err(e) if e.is_busy() => {
                busy_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => return Err(format!("simulate: {e}")),
        }
    };

    let t = Instant::now();
    let sweep_ns = loop {
        match client.sweep(sweep_spec()) {
            Ok(rows) => {
                if rows.len() != 3 {
                    return Err(format!("sweep returned {} rows, expected 3", rows.len()));
                }
                break t.elapsed().as_nanos() as f64;
            }
            Err(e) if e.is_busy() => {
                busy_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => return Err(format!("sweep: {e}")),
        }
    };

    client.evict(trace).map_err(|e| format!("evict: {e}"))?;
    Ok(SessionSample {
        submit_ns,
        simulate_ns,
        sweep_ns,
        session_ns: session.elapsed().as_nanos() as f64,
    })
}

fn run_loadgen(h: &mut Harness, n_clients: usize) {
    let server = Server::start(ServeConfig::default().with_addr("127.0.0.1:0"))
        .expect("start loadgen server");
    let addr = server.local_addr().to_string();
    let image = payload();
    let start = Barrier::new(n_clients);
    let busy_retries = AtomicU64::new(0);

    let wall = Instant::now();
    let outcomes: Vec<Result<SessionSample, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_clients)
            .map(|_| s.spawn(|| run_session(&addr, &start, &image, &busy_retries)))
            .collect();
        handles
            .into_iter()
            .map(|t| t.join().expect("client thread"))
            .collect()
    });
    let wall_ns = wall.elapsed().as_nanos() as f64;

    let failures: Vec<&String> = outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
    assert!(
        failures.is_empty(),
        "{} of {} clients failed; first: {}",
        failures.len(),
        n_clients,
        failures[0]
    );
    let samples: Vec<&SessionSample> = outcomes.iter().filter_map(|o| o.as_ref().ok()).collect();

    let stats = server.service().stats();
    println!(
        "{n_clients} clients, 0 failures, {} busy retries; server: {} requests, \
         {} jobs done, {} sweep batches (+{} coalesced), {} translations",
        busy_retries.load(Ordering::Relaxed),
        stats.requests,
        stats.jobs_done,
        stats.sweep_batches,
        stats.coalesced_sweeps,
        stats.translations,
    );
    assert_eq!(stats.jobs_failed, 0, "no server-side job may fail");

    let collect = |f: fn(&SessionSample) -> f64| samples.iter().map(|s| f(s)).collect::<Vec<_>>();
    h.record_samples("serve_submit_trace", &collect(|s| s.submit_ns), None);
    h.record_samples(
        "serve_simulate_roundtrip",
        &collect(|s| s.simulate_ns),
        None,
    );
    h.record_samples("serve_sweep_roundtrip", &collect(|s| s.sweep_ns), None);
    h.record_samples("serve_full_session", &collect(|s| s.session_ns), None);
    // Aggregate wall clock for the whole storm, one synthetic sample —
    // the headline number: how long 200 clients' sessions take end to
    // end.
    h.record_samples("serve_loadgen_wall", &[wall_ns], None);

    server.shutdown_and_join();
}

fn main() {
    let mut clients = 200usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--clients" {
            clients = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .expect("--clients needs a positive integer");
        }
    }
    let mut h = Harness::from_args("serve");
    run_loadgen(&mut h, clients);
    h.finish();
}
