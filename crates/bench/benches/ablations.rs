//! Ablations of the design choices DESIGN.md calls out: barrier
//! algorithm substitution, analytic vs link-level contention, poll
//! interval, declared vs actual transfer sizes, and the multithreaded
//! (m < n) extension.

use extrap_bench::harness::Harness;
use extrap_bench::ring_traces;
use extrap_core::{
    extrapolate, machine, BarrierAlgorithm, MultithreadParams, ServicePolicy, SizeMode,
    ThreadMapping,
};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("ablations");

    {
        let ts = ring_traces(32, 16, 20.0, 256);
        for (name, algorithm) in [
            ("barrier_algorithm/linear", BarrierAlgorithm::Linear),
            (
                "barrier_algorithm/tree4",
                BarrierAlgorithm::Tree { arity: 4 },
            ),
            ("barrier_algorithm/hardware", BarrierAlgorithm::Hardware),
        ] {
            let mut params = machine::default_distributed();
            params.barrier.algorithm = algorithm;
            if algorithm != BarrierAlgorithm::Linear {
                params.barrier.by_msgs = false;
            }
            h.bench(name, || {
                black_box(extrapolate(&ts, &params).unwrap().exec_time())
            });
        }
    }

    {
        let ts = ring_traces(16, 16, 20.0, 4_096);
        let params = machine::cm5();
        let refmachine = extrap_refsim::RefMachine::new(params.clone());
        h.bench("contention_model/analytic", || {
            black_box(extrapolate(&ts, &params).unwrap().exec_time())
        });
        h.bench("contention_model/link_level", || {
            black_box(refmachine.measure(&ts).unwrap().exec_time())
        });
    }

    {
        let ts = ring_traces(16, 16, 100.0, 1_024);
        for us in [10.0, 100.0, 1000.0] {
            let mut params = machine::default_distributed();
            params.policy = ServicePolicy::poll_us(us);
            h.bench(&format!("poll_interval/{us}us"), || {
                black_box(extrapolate(&ts, &params).unwrap().exec_time())
            });
        }
    }

    {
        let ts = ring_traces(16, 16, 20.0, 65_536);
        for (name, mode) in [
            ("size_mode/declared", SizeMode::Declared),
            ("size_mode/actual", SizeMode::Actual),
        ] {
            let mut params = machine::default_distributed();
            params.size_mode = mode;
            h.bench(name, || {
                black_box(extrapolate(&ts, &params).unwrap().exec_time())
            });
        }
    }

    {
        let ts = ring_traces(16, 16, 50.0, 1_024);
        for (name, mapping) in [
            ("thread_mapping/one_per_proc", ThreadMapping::OnePerProc),
            ("thread_mapping/block_4", ThreadMapping::Block { procs: 4 }),
            (
                "thread_mapping/cyclic_4",
                ThreadMapping::Cyclic { procs: 4 },
            ),
        ] {
            let mut params = machine::default_distributed();
            params.multithread = MultithreadParams {
                mapping,
                ..MultithreadParams::default()
            };
            h.bench(name, || {
                black_box(extrapolate(&ts, &params).unwrap().exec_time())
            });
        }
    }

    h.finish();
}
