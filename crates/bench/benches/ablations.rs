//! Ablations of the design choices DESIGN.md calls out: barrier
//! algorithm substitution, analytic vs link-level contention, poll
//! interval, declared vs actual transfer sizes, and the multithreaded
//! (m < n) extension.

use criterion::{criterion_group, criterion_main, Criterion};
use extrap_bench::ring_traces;
use extrap_core::{
    extrapolate, machine, BarrierAlgorithm, MultithreadParams, ServicePolicy, SizeMode,
    ThreadMapping,
};
use std::hint::black_box;

fn bench_barrier_algorithms(c: &mut Criterion) {
    let ts = ring_traces(32, 16, 20.0, 256);
    let mut g = c.benchmark_group("barrier_algorithm");
    for (name, algorithm) in [
        ("linear", BarrierAlgorithm::Linear),
        ("tree4", BarrierAlgorithm::Tree { arity: 4 }),
        ("hardware", BarrierAlgorithm::Hardware),
    ] {
        let mut params = machine::default_distributed();
        params.barrier.algorithm = algorithm;
        if algorithm != BarrierAlgorithm::Linear {
            params.barrier.by_msgs = false;
        }
        g.bench_function(name, |b| {
            b.iter(|| black_box(extrapolate(&ts, &params).unwrap().exec_time()))
        });
    }
    g.finish();
}

fn bench_contention_models(c: &mut Criterion) {
    let ts = ring_traces(16, 16, 20.0, 4_096);
    let params = machine::cm5();
    let refmachine = extrap_refsim::RefMachine::new(params.clone());
    let mut g = c.benchmark_group("contention_model");
    g.bench_function("analytic", |b| {
        b.iter(|| black_box(extrapolate(&ts, &params).unwrap().exec_time()))
    });
    g.bench_function("link_level", |b| {
        b.iter(|| black_box(refmachine.measure(&ts).unwrap().exec_time()))
    });
    g.finish();
}

fn bench_poll_intervals(c: &mut Criterion) {
    let ts = ring_traces(16, 16, 100.0, 1_024);
    let mut g = c.benchmark_group("poll_interval");
    for us in [10.0, 100.0, 1000.0] {
        let mut params = machine::default_distributed();
        params.policy = ServicePolicy::poll_us(us);
        g.bench_function(format!("{us}us"), |b| {
            b.iter(|| black_box(extrapolate(&ts, &params).unwrap().exec_time()))
        });
    }
    g.finish();
}

fn bench_size_modes(c: &mut Criterion) {
    let ts = ring_traces(16, 16, 20.0, 65_536);
    let mut g = c.benchmark_group("size_mode");
    for (name, mode) in [("declared", SizeMode::Declared), ("actual", SizeMode::Actual)] {
        let mut params = machine::default_distributed();
        params.size_mode = mode;
        g.bench_function(name, |b| {
            b.iter(|| black_box(extrapolate(&ts, &params).unwrap().exec_time()))
        });
    }
    g.finish();
}

fn bench_multithread_mappings(c: &mut Criterion) {
    let ts = ring_traces(16, 16, 50.0, 1_024);
    let mut g = c.benchmark_group("thread_mapping");
    for (name, mapping) in [
        ("one_per_proc", ThreadMapping::OnePerProc),
        ("block_4", ThreadMapping::Block { procs: 4 }),
        ("cyclic_4", ThreadMapping::Cyclic { procs: 4 }),
    ] {
        let mut params = machine::default_distributed();
        params.multithread = MultithreadParams {
            mapping,
            ..MultithreadParams::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| black_box(extrapolate(&ts, &params).unwrap().exec_time()))
        });
    }
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(20);
    targets = bench_barrier_algorithms, bench_contention_models,
              bench_poll_intervals, bench_size_modes, bench_multithread_mappings
}
criterion_main!(ablations);
