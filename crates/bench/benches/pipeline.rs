//! The out-of-core streaming pipeline, end to end: a synthetic program
//! trace on disk → chunked [`ProgramStream`] over a [`FileSource`] →
//! fused epoch-translate + incremental compile
//! ([`compile_program_stream`]) → one extrapolation run.  Reported as
//! MB/s over the on-disk trace bytes, plus the streaming machinery's
//! peak resident bytes for the small and huge inputs.
//!
//! The memory rows are the point of this target: the huge input holds
//! the program *structure* (threads, per-epoch work) fixed and scales
//! the record count ~10x by adding barrier epochs — exactly the
//! multi-GB long-running-program shape — and the bench hard-asserts
//! the machinery peak stays flat (< 1.5x).  The timing rows feed the
//! usual `check_bench_regression.py` gate via `BENCH_pipeline.json`.
//!
//! `--scale huge` multiplies both inputs' epoch counts by 10 (the
//! "small" file is then itself 10x-records), keeping the flatness
//! probe meaningful at any scale.

use extrap_bench::harness::{Harness, Throughput};
use extrap_core::{compile_program_stream, machine, Extrapolator};
use extrap_time::{DurationNs, ElementId, ThreadId};
use extrap_trace::builder::{PhaseAccess, PhaseProgram, PhaseWork};
use extrap_trace::stream::ProgramStream;
use extrap_trace::{ProgramTrace, SpillSink};
use std::hint::black_box;
use std::path::PathBuf;

const THREADS: usize = 16;
const BASE_EPOCHS: usize = 48;

/// A phase-structured program whose record count scales with `epochs`
/// while its per-epoch structure (threads, accesses, elements) stays
/// fixed — the shape under which the translate machinery's residency
/// must stay flat.
fn synthetic(epochs: usize) -> ProgramTrace {
    let mut p = PhaseProgram::new(THREADS);
    for e in 0..epochs {
        let phase: Vec<PhaseWork> = (0..THREADS)
            .map(|t| {
                let owner = (t + 1) % THREADS;
                PhaseWork {
                    compute: DurationNs::from_us(40.0 + (t % 4) as f64),
                    accesses: vec![
                        PhaseAccess {
                            after: DurationNs::from_us(10.0),
                            owner: ThreadId::from_index(owner),
                            element: ElementId(owner as u32),
                            declared_bytes: 256,
                            actual_bytes: 64,
                            write: false,
                        },
                        PhaseAccess {
                            after: DurationNs::from_us(25.0),
                            owner: ThreadId::from_index(owner),
                            element: ElementId(owner as u32),
                            declared_bytes: 256,
                            actual_bytes: 64,
                            write: e % 2 == 0,
                        },
                    ],
                }
            })
            .collect();
        p.push_phase(phase);
    }
    p.record()
}

/// Writes `trace` to a bench-private temp file, returning its path and
/// on-disk size.
fn write_temp(trace: &ProgramTrace, tag: &str) -> (PathBuf, u64) {
    let path = std::env::temp_dir().join(format!(
        "extrap-bench-pipeline-{}-{tag}.xtrp",
        std::process::id()
    ));
    extrap_trace::writer::write_program_file(&path, trace).expect("write synthetic trace");
    let len = std::fs::metadata(&path)
        .expect("stat synthetic trace")
        .len();
    (path, len)
}

/// One full pipeline pass over the on-disk trace: stream → fused
/// translate+compile → one extrapolation.  Returns (predicted
/// makespan ns, machinery peak resident bytes).
fn run_pipeline(path: &PathBuf) -> (u64, usize) {
    let mut stream = ProgramStream::open(path).expect("open trace stream");
    let (program, stats) =
        compile_program_stream(&mut stream, Default::default()).expect("streaming compile");
    let pred = Extrapolator::new(machine::default_distributed())
        .run(&program)
        .expect("extrapolate");
    (pred.exec_time().0, stats.peak_resident_bytes)
}

fn main() {
    // `--scale huge` multiplies the base epoch count by 10 (see the
    // module doc); the Harness consumes the flag's value itself.
    let args: Vec<String> = std::env::args().collect();
    let mult = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("small") => 1,
        Some("huge") => 10,
        Some(other) => {
            eprintln!("unknown scale {other:?} (small|huge)");
            std::process::exit(2);
        }
    };
    let small_trace = synthetic(BASE_EPOCHS * mult);
    let huge_trace = synthetic(BASE_EPOCHS * mult * 10);
    let (small_path, small_bytes) = write_temp(&small_trace, "small");
    let (huge_path, huge_bytes) = write_temp(&huge_trace, "huge");
    println!(
        "pipeline inputs: small {} records ({small_bytes} B), huge {} records ({huge_bytes} B)",
        small_trace.records.len(),
        huge_trace.records.len()
    );

    // The flatness gate, first and unconditionally: 10x the records
    // through the same structure must not grow the streaming
    // machinery's peak residency.  (The compiled program — the
    // pipeline's *product* — necessarily grows; the claim is about the
    // translate/compile machinery, as for the PR-4 lint probe.)
    let (small_pred, small_peak) = run_pipeline(&small_path);
    let (huge_pred, huge_peak) = run_pipeline(&huge_path);
    println!(
        "machinery peak resident: small {small_peak} B, huge {huge_peak} B \
         ({:.2}x for 10x records)",
        huge_peak as f64 / small_peak.max(1) as f64
    );
    assert!(
        (huge_peak as f64) < small_peak as f64 * 1.5,
        "streaming pipeline residency grew with record count: \
         {small_peak} -> {huge_peak} bytes for 10x records"
    );

    let mut h = Harness::from_args("pipeline");

    // Throughput over the on-disk bytes, small and huge.
    h.bench_throughput("pipeline_stream", Throughput::Bytes(small_bytes), || {
        black_box(run_pipeline(&small_path))
    });
    h.bench_throughput(
        "pipeline_stream_huge",
        Throughput::Bytes(huge_bytes),
        || black_box(run_pipeline(&huge_path)),
    );

    // The out-of-core translate-to-disk path (`extrap translate
    // --stream`): spill/merge through a budget so tight every batch
    // spills, then replay into an output set file.
    let out = std::env::temp_dir().join(format!(
        "extrap-bench-pipeline-{}-out.xtps",
        std::process::id()
    ));
    h.bench_throughput(
        "pipeline_spill_translate",
        Throughput::Bytes(small_bytes),
        || {
            let mut stream = ProgramStream::open(&small_path).expect("open trace stream");
            let mut sink = SpillSink::new(stream.n_threads(), 4 << 10);
            extrap_trace::translate_stream(&mut stream, Default::default(), &mut sink)
                .expect("streaming translate");
            let spilled = sink.spill_count();
            sink.write_set_file(&out).expect("write set file");
            assert!(spilled > 0, "a 4 KiB budget must force spills");
            black_box(spilled)
        },
    );

    // The residency numbers as rows, so the committed baseline pins
    // them and `check_bench_regression.py` flags growth beyond 2x.
    // (Values are bytes, not nanoseconds; the gate only ratios them.)
    h.record_samples("pipeline_peak_resident_small", &[small_peak as f64], None);
    h.record_samples("pipeline_peak_resident_huge", &[huge_peak as f64], None);
    h.finish();

    // Predictions sanity: both inputs extrapolated to something.
    assert!(small_pred > 0 && huge_pred > small_pred);
    let _ = std::fs::remove_file(&small_path);
    let _ = std::fs::remove_file(&huge_path);
    let _ = std::fs::remove_file(&out);
}
