//! Micro-benchmarks of the pipeline kernels: trace recording,
//! translation, encoding, and raw simulator event throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use extrap_bench::{ring_program, ring_traces};
use extrap_core::{extrapolate, machine};
use extrap_time::DurationNs;
use std::hint::black_box;

fn bench_runtime_recording(c: &mut Criterion) {
    c.bench_function("pcpp_runtime_8_threads_64_phases", |b| {
        b.iter(|| {
            let trace = pcpp_rt::Program::new(8)
                .with_work_model(pcpp_rt::WorkModel::unit())
                .run(|ctx| {
                    for _ in 0..64 {
                        ctx.charge(DurationNs(1_000));
                        ctx.barrier();
                    }
                });
            black_box(trace.records.len())
        })
    });
}

fn bench_translation(c: &mut Criterion) {
    let trace = ring_program(32, 64, 10.0, 256);
    let mut g = c.benchmark_group("translation");
    g.throughput(Throughput::Elements(trace.records.len() as u64));
    g.bench_function("translate_32t_64p", |b| {
        b.iter(|| black_box(extrap_trace::translate(&trace, Default::default()).unwrap()))
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let trace = ring_program(32, 64, 10.0, 256);
    let encoded = extrap_trace::format::encode_program(&trace);
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_program", |b| {
        b.iter(|| black_box(extrap_trace::format::encode_program(&trace).len()))
    });
    g.bench_function("decode_program", |b| {
        b.iter(|| black_box(extrap_trace::format::decode_program(&encoded).unwrap()))
    });
    g.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for &n in &[4usize, 16, 32] {
        let ts = ring_traces(n, 32, 20.0, 1_024);
        let params = machine::default_distributed();
        let events = extrapolate(&ts, &params).unwrap().events_dispatched;
        g.throughput(Throughput::Elements(events));
        g.bench_function(format!("extrapolate_ring_{n}t"), |b| {
            b.iter(|| black_box(extrapolate(&ts, &params).unwrap().exec_time()))
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_dispatch_10k", |b| {
        b.iter(|| {
            let mut eng: extrap_sim::Engine<u64> = extrap_sim::Engine::new();
            for i in 0..10_000u64 {
                eng.schedule(extrap_time::TimeNs(i % 977), i);
            }
            let mut count = 0u64;
            while eng.next().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_runtime_recording, bench_translation, bench_codec,
              bench_engine_throughput, bench_event_queue
}
criterion_main!(kernels);
