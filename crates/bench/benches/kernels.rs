//! Micro-benchmarks of the pipeline kernels: trace recording,
//! translation, encoding, and raw simulator event throughput.

use extrap_bench::harness::{Harness, Throughput};
use extrap_bench::{ring_program, ring_traces};
use extrap_core::{extrapolate, machine, CompiledProgram, RecordMode, SimScratch};
use extrap_sim::{SchedulerKind, SplitMix64};
use extrap_time::{DurationNs, TimeNs};
use std::hint::black_box;

/// Schedules every timestamp in `times`, then drains the queue; the raw
/// event-queue hot loop for one backend.
fn drain(kind: SchedulerKind, times: &[u64]) -> u64 {
    let mut eng: extrap_sim::Engine<u64> = extrap_sim::Engine::with_scheduler(kind);
    for (i, &t) in times.iter().enumerate() {
        eng.schedule(TimeNs(t), i as u64);
    }
    let mut count = 0u64;
    while eng.next().is_some() {
        count += 1;
    }
    count
}

/// Like [`drain`], but cancels every other event before draining — the
/// slab queue's O(1) cancel and lazy tombstone purge under churn.
fn drain_with_cancel(kind: SchedulerKind, times: &[u64]) -> u64 {
    let mut eng: extrap_sim::Engine<u64> = extrap_sim::Engine::with_scheduler(kind);
    let mut tokens = Vec::with_capacity(times.len() / 2);
    for (i, &t) in times.iter().enumerate() {
        let tok = eng.schedule(TimeNs(t), i as u64);
        if i % 2 == 0 {
            tokens.push(tok);
        }
    }
    for tok in tokens.drain(..) {
        eng.cancel(tok);
    }
    let mut count = 0u64;
    while eng.next().is_some() {
        count += 1;
    }
    count
}

fn main() {
    let mut h = Harness::from_args("kernels");

    h.bench("pcpp_runtime_8_threads_64_phases", || {
        let trace = pcpp_rt::Program::new(8)
            .with_work_model(pcpp_rt::WorkModel::unit())
            .run(|ctx| {
                for _ in 0..64 {
                    ctx.charge(DurationNs(1_000));
                    ctx.barrier();
                }
            });
        black_box(trace.records.len())
    });

    {
        let trace = ring_program(32, 64, 10.0, 256);
        h.bench_throughput(
            "translate_32t_64p",
            Throughput::Elements(trace.records.len() as u64),
            || black_box(extrap_trace::translate(&trace, Default::default()).unwrap()),
        );

        let encoded = extrap_trace::format::encode_program(&trace);
        h.bench_throughput(
            "encode_program",
            Throughput::Bytes(encoded.len() as u64),
            || black_box(extrap_trace::format::encode_program(&trace).len()),
        );
        h.bench_throughput(
            "decode_program",
            Throughput::Bytes(encoded.len() as u64),
            || black_box(extrap_trace::format::decode_program(&encoded).unwrap()),
        );
    }

    for &n in &[4usize, 16, 32] {
        let ts = ring_traces(n, 32, 20.0, 1_024);
        let params = machine::default_distributed();
        let events = extrapolate(&ts, &params).unwrap().events_dispatched;
        h.bench_throughput(
            &format!("extrapolate_ring_{n}t"),
            Throughput::Elements(events),
            || black_box(extrapolate(&ts, &params).unwrap().exec_time()),
        );
    }

    // The sweep hot path in isolation: compile once, replay with reused
    // scratch buffers, metrics only.
    {
        let ts = ring_traces(32, 32, 20.0, 1_024);
        let program = CompiledProgram::compile(&ts).unwrap();
        let mut params = machine::default_distributed();
        params.record_mode = RecordMode::MetricsOnly;
        let events = extrapolate(&ts, &machine::default_distributed())
            .unwrap()
            .events_dispatched;
        let mut scratch = SimScratch::default();
        h.bench_throughput(
            "run_compiled_scratch_ring_32t",
            Throughput::Elements(events),
            || {
                black_box(
                    extrap_core::run_compiled_scratch(&program, &params, &mut scratch)
                        .unwrap()
                        .exec_time(),
                )
            },
        );
    }

    // The raw event queue under both backends, over three timestamp
    // shapes.  Uniform is the calendar queue's home turf; skewed
    // (almost everything near-term, a sparse far-future tail) and
    // clustered (tight equal-time bursts separated by long gaps) are
    // its classic worst cases, kept honest by resize-on-skew and the
    // direct-search fallback.
    let uniform: Vec<u64> = (0..10_000u64).map(|i| i % 977).collect();
    let skewed: Vec<u64> = {
        let mut rng = SplitMix64::new(0x5eed_cafe);
        (0..10_000)
            .map(|_| {
                if rng.next_below(100) == 0 {
                    1_000_000 + rng.next_below(1_000_000_000)
                } else {
                    rng.next_below(1_000)
                }
            })
            .collect()
    };
    let clustered: Vec<u64> = (0..10_000u64).map(|i| (i / 100) * 1_000_000).collect();

    for (suffix, kind) in [
        ("heap", SchedulerKind::Heap),
        ("calendar", SchedulerKind::Calendar),
    ] {
        h.bench(&format!("event_queue_10k_{suffix}"), || {
            black_box(drain(kind, &uniform))
        });
        h.bench(&format!("event_queue_cancel_10k_{suffix}"), || {
            black_box(drain_with_cancel(kind, &uniform))
        });
        h.bench(&format!("event_queue_skewed_10k_{suffix}"), || {
            black_box(drain(kind, &skewed))
        });
        h.bench(&format!("event_queue_clustered_10k_{suffix}"), || {
            black_box(drain(kind, &clustered))
        });
    }

    h.finish();
}
