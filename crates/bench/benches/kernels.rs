//! Micro-benchmarks of the pipeline kernels: trace recording,
//! translation, encoding, and raw simulator event throughput.

use extrap_bench::harness::{Harness, Throughput};
use extrap_bench::{ring_program, ring_traces};
use extrap_core::{extrapolate, machine, CompiledProgram, RecordMode, SimScratch};
use extrap_time::DurationNs;
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("kernels");

    h.bench("pcpp_runtime_8_threads_64_phases", || {
        let trace = pcpp_rt::Program::new(8)
            .with_work_model(pcpp_rt::WorkModel::unit())
            .run(|ctx| {
                for _ in 0..64 {
                    ctx.charge(DurationNs(1_000));
                    ctx.barrier();
                }
            });
        black_box(trace.records.len())
    });

    {
        let trace = ring_program(32, 64, 10.0, 256);
        h.bench_throughput(
            "translate_32t_64p",
            Throughput::Elements(trace.records.len() as u64),
            || black_box(extrap_trace::translate(&trace, Default::default()).unwrap()),
        );

        let encoded = extrap_trace::format::encode_program(&trace);
        h.bench_throughput(
            "encode_program",
            Throughput::Bytes(encoded.len() as u64),
            || black_box(extrap_trace::format::encode_program(&trace).len()),
        );
        h.bench_throughput(
            "decode_program",
            Throughput::Bytes(encoded.len() as u64),
            || black_box(extrap_trace::format::decode_program(&encoded).unwrap()),
        );
    }

    for &n in &[4usize, 16, 32] {
        let ts = ring_traces(n, 32, 20.0, 1_024);
        let params = machine::default_distributed();
        let events = extrapolate(&ts, &params).unwrap().events_dispatched;
        h.bench_throughput(
            &format!("extrapolate_ring_{n}t"),
            Throughput::Elements(events),
            || black_box(extrapolate(&ts, &params).unwrap().exec_time()),
        );
    }

    // The sweep hot path in isolation: compile once, replay with reused
    // scratch buffers, metrics only.
    {
        let ts = ring_traces(32, 32, 20.0, 1_024);
        let program = CompiledProgram::compile(&ts).unwrap();
        let mut params = machine::default_distributed();
        params.record_mode = RecordMode::MetricsOnly;
        let events = extrapolate(&ts, &machine::default_distributed())
            .unwrap()
            .events_dispatched;
        let mut scratch = SimScratch::default();
        h.bench_throughput(
            "run_compiled_scratch_ring_32t",
            Throughput::Elements(events),
            || {
                black_box(
                    extrap_core::run_compiled_scratch(&program, &params, &mut scratch)
                        .unwrap()
                        .exec_time(),
                )
            },
        );
    }

    h.bench("event_queue_schedule_dispatch_10k", || {
        let mut eng: extrap_sim::Engine<u64> = extrap_sim::Engine::new();
        for i in 0..10_000u64 {
            eng.schedule(extrap_time::TimeNs(i % 977), i);
        }
        let mut count = 0u64;
        while eng.next().is_some() {
            count += 1;
        }
        black_box(count)
    });

    h.bench("event_queue_schedule_cancel_dispatch_10k", || {
        // Every other event is cancelled — the slab queue's O(1) cancel
        // and lazy tombstone purge under churn.
        let mut eng: extrap_sim::Engine<u64> = extrap_sim::Engine::new();
        let mut tokens = Vec::with_capacity(5_000);
        for i in 0..10_000u64 {
            let tok = eng.schedule(extrap_time::TimeNs(i % 977), i);
            if i % 2 == 0 {
                tokens.push(tok);
            }
        }
        for tok in tokens.drain(..) {
            eng.cancel(tok);
        }
        let mut count = 0u64;
        while eng.next().is_some() {
            count += 1;
        }
        black_box(count)
    });

    h.finish();
}
