//! One benchmark per paper table/figure: how long regenerating each
//! result costs.  The workload traces are built once outside the timing
//! loops; what is measured is the extrapolation itself — the quantity
//! the paper sells ("the ability of extrapolation to predict the results
//! very quickly").

use extrap_bench::harness::Harness;
use extrap_bench::suite_traces;
use extrap_core::{extrapolate, machine, ServicePolicy, SizeMode};
use extrap_trace::translate;
use extrap_workloads::{matmul, Bench, Scale};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("figures");

    h.bench("table1_barrier_params", || {
        black_box(extrap_core::BarrierParams::default())
    });
    h.bench("table3_cm5_preset", || black_box(machine::cm5()));

    {
        let traces = suite_traces(32);
        let params = machine::default_distributed();
        h.bench("fig4_suite_extrapolation_p32", || {
            for (_, ts) in &traces {
                black_box(extrapolate(ts, &params).unwrap().exec_time());
            }
        });
    }

    {
        let grid = translate(&Bench::Grid.trace(16, Scale::Tiny), Default::default()).unwrap();
        let mut variants = vec![machine::default_distributed(), machine::ideal()];
        let mut actual = machine::default_distributed();
        actual.size_mode = SizeMode::Actual;
        variants.push(actual);
        h.bench("fig5_grid_variants_p16", || {
            for params in &variants {
                black_box(extrapolate(&grid, params).unwrap().exec_time());
            }
        });
    }

    {
        let mgrid = translate(&Bench::Mgrid.trace(16, Scale::Tiny), Default::default()).unwrap();
        h.bench("fig6_mgrid_mips_sweep_p16", || {
            for ratio in [2.0, 1.0, 0.5] {
                let mut params = machine::default_distributed();
                params.mips_ratio = ratio;
                black_box(extrapolate(&mgrid, &params).unwrap().exec_time());
            }
        });
    }

    {
        let mgrid = translate(&Bench::Mgrid.trace(8, Scale::Tiny), Default::default()).unwrap();
        h.bench("fig7_mgrid_startup_sweep_p8", || {
            for startup in [5.0, 100.0, 200.0] {
                let mut params = machine::default_distributed();
                params.comm = params.comm.with_startup_us(startup);
                black_box(extrapolate(&mgrid, &params).unwrap().exec_time());
            }
        });
    }

    {
        let cyclic = translate(&Bench::Cyclic.trace(16, Scale::Tiny), Default::default()).unwrap();
        let policies = [
            ServicePolicy::NoInterrupt,
            ServicePolicy::Interrupt,
            ServicePolicy::poll_us(100.0),
        ];
        h.bench("fig8_cyclic_policies_p16", || {
            for policy in policies {
                let mut params = machine::default_distributed();
                params.comm = params.comm.with_startup_us(100.0);
                params.policy = policy;
                black_box(extrapolate(&cyclic, &params).unwrap().exec_time());
            }
        });
    }

    {
        let cfg = matmul::MatmulConfig {
            n: 12,
            dist: (pcpp_rt::Dist1::Block, pcpp_rt::Dist1::Block),
        };
        let ts = translate(&matmul::run(16, &cfg).0, Default::default()).unwrap();
        let params = machine::cm5();
        let refmachine = extrap_refsim::RefMachine::new(params.clone());
        h.bench("fig9_matmul_predicted_p16", || {
            black_box(extrapolate(&ts, &params).unwrap().exec_time())
        });
        h.bench("fig9_matmul_measured_p16", || {
            black_box(refmachine.measure(&ts).unwrap().exec_time())
        });
    }

    h.finish();
}
