//! One benchmark per paper table/figure: how long regenerating each
//! result costs.  The workload traces are built once outside the timing
//! loops; what is measured is the extrapolation itself — the quantity
//! the paper sells ("the ability of extrapolation to predict the results
//! very quickly").

use criterion::{criterion_group, criterion_main, Criterion};
use extrap_bench::suite_traces;
use extrap_core::{extrapolate, machine, ServicePolicy, SizeMode};
use extrap_trace::translate;
use extrap_workloads::{matmul, Bench, Scale};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1_barrier_params", |b| {
        b.iter(|| black_box(extrap_core::BarrierParams::default()))
    });
    c.bench_function("table3_cm5_preset", |b| b.iter(|| black_box(machine::cm5())));
}

fn bench_fig4(c: &mut Criterion) {
    let traces = suite_traces(32);
    let params = machine::default_distributed();
    c.bench_function("fig4_suite_extrapolation_p32", |b| {
        b.iter(|| {
            for (_, ts) in &traces {
                black_box(extrapolate(ts, &params).unwrap().exec_time());
            }
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let grid = translate(&Bench::Grid.trace(16, Scale::Tiny), Default::default()).unwrap();
    let mut variants = vec![machine::default_distributed(), machine::ideal()];
    let mut actual = machine::default_distributed();
    actual.size_mode = SizeMode::Actual;
    variants.push(actual);
    c.bench_function("fig5_grid_variants_p16", |b| {
        b.iter(|| {
            for params in &variants {
                black_box(extrapolate(&grid, params).unwrap().exec_time());
            }
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let mgrid = translate(&Bench::Mgrid.trace(16, Scale::Tiny), Default::default()).unwrap();
    c.bench_function("fig6_mgrid_mips_sweep_p16", |b| {
        b.iter(|| {
            for ratio in [2.0, 1.0, 0.5] {
                let mut params = machine::default_distributed();
                params.mips_ratio = ratio;
                black_box(extrapolate(&mgrid, &params).unwrap().exec_time());
            }
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let mgrid = translate(&Bench::Mgrid.trace(8, Scale::Tiny), Default::default()).unwrap();
    c.bench_function("fig7_mgrid_startup_sweep_p8", |b| {
        b.iter(|| {
            for startup in [5.0, 100.0, 200.0] {
                let mut params = machine::default_distributed();
                params.comm = params.comm.with_startup_us(startup);
                black_box(extrapolate(&mgrid, &params).unwrap().exec_time());
            }
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    let cyclic = translate(&Bench::Cyclic.trace(16, Scale::Tiny), Default::default()).unwrap();
    let policies = [
        ServicePolicy::NoInterrupt,
        ServicePolicy::Interrupt,
        ServicePolicy::poll_us(100.0),
    ];
    c.bench_function("fig8_cyclic_policies_p16", |b| {
        b.iter(|| {
            for policy in policies {
                let mut params = machine::default_distributed();
                params.comm = params.comm.with_startup_us(100.0);
                params.policy = policy;
                black_box(extrapolate(&cyclic, &params).unwrap().exec_time());
            }
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    let cfg = matmul::MatmulConfig {
        n: 12,
        dist: (pcpp_rt::Dist1::Block, pcpp_rt::Dist1::Block),
    };
    let ts = translate(&matmul::run(16, &cfg).0, Default::default()).unwrap();
    let params = machine::cm5();
    let refmachine = extrap_refsim::RefMachine::new(params.clone());
    c.bench_function("fig9_matmul_predicted_p16", |b| {
        b.iter(|| black_box(extrapolate(&ts, &params).unwrap().exec_time()))
    });
    c.bench_function("fig9_matmul_measured_p16", |b| {
        b.iter(|| black_box(refmachine.measure(&ts).unwrap().exec_time()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_tables, bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_fig8, bench_fig9
}
criterion_main!(figures);
