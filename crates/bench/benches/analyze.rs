//! Micro-benchmarks of the static work/span bound analyzer: whole-suite
//! `analyze` cost (the `extrap analyze` hot path), envelope construction
//! with representative-region composition, and the per-prediction
//! verification the bounds sanitizer runs when `--check-bounds` is on.

use extrap_bench::harness::Harness;
use extrap_bench::ring_traces;
use extrap_core::{machine, CompiledProgram, Extrapolator, RecordMode};
use extrap_workloads::{Bench, Scale};
use std::hint::black_box;

fn main() {
    let mut h = Harness::from_args("analyze");

    let mut params = machine::default_distributed();
    params.record_mode = RecordMode::MetricsOnly;

    // The full benchmark suite at 16 processors — what `extrap-exp
    // bounds` and the CLI's curve sweeps analyze repeatedly.
    let suite: Vec<(String, CompiledProgram)> = Bench::all()
        .into_iter()
        .map(|b| {
            let set = extrap_trace::translate(&b.trace(16, Scale::Tiny), Default::default())
                .expect("translate");
            (
                b.name().to_string(),
                CompiledProgram::compile(&set).expect("compile"),
            )
        })
        .collect();

    {
        let params = params.clone();
        let suite = &suite;
        h.bench("analyze_suite_16p", move || {
            let mut total = 0u64;
            for (_, program) in suite.iter() {
                let analysis = extrap_analyze::analyze(program, &params).expect("supported");
                total = total.wrapping_add(analysis.upper.as_ns());
            }
            black_box(total)
        });
    }

    // A large synthetic program: analysis cost scales with ops, so pin
    // the per-op rate on a trace an order of magnitude past the suite.
    let big = CompiledProgram::compile(&ring_traces(32, 256, 10.0, 256)).expect("compile");
    {
        let params = params.clone();
        let big = &big;
        h.bench("analyze_ring_32t_256p", move || {
            black_box(extrap_analyze::analyze(big, &params).expect("supported"))
        });
    }

    // Envelope + verification — the exact per-prediction overhead the
    // bounds sanitizer adds to every `--check-bounds` simulation.
    {
        let set = extrap_trace::translate(&Bench::Grid.trace(8, Scale::Tiny), Default::default())
            .expect("translate");
        let program = CompiledProgram::compile(&set).expect("compile");
        let prediction = Extrapolator::new(params.clone())
            .run(&program)
            .expect("simulate");
        let params2 = params.clone();
        let prog = &program;
        h.bench("envelope_grid_8p", move || {
            black_box(extrap_analyze::envelope(prog, &params2).expect("supported"))
        });
        let params3 = params.clone();
        let prog = &program;
        h.bench("verify_prediction_grid_8p", move || {
            extrap_analyze::verify_prediction(prog, &params3, &prediction).expect("inside");
            black_box(prediction.exec_time().as_ns())
        });
    }

    h.finish();
}
