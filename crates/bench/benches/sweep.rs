//! The parallel sweep engine on the Figure-4 grid (all 7 benchmarks ×
//! 6 processor counts, translation included): serial vs worker-pool
//! wall clock, plus the warm-cache (extrapolation-only) comparison.
//!
//! Run with `cargo bench --bench sweep`; the trailing summary prints the
//! measured parallel speedup.

use extrap_bench::harness::{Harness, Throughput};
use extrap_core::{machine, sweep, RecordMode, SharedTraceCache, SweepGrid};
use extrap_trace::translate;
use extrap_workloads::{Bench, Scale};
use std::hint::black_box;
use std::time::Instant;

const PROCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn fig4_grid(record_mode: RecordMode) -> Vec<extrap_core::SweepJob<(Bench, usize)>> {
    let mut params = machine::default_distributed();
    params.record_mode = record_mode;
    SweepGrid::new()
        .workloads(Bench::all())
        .procs(PROCS)
        .params(params)
        .jobs()
}

fn run_grid_mode(
    workers: usize,
    cache: &SharedTraceCache<(Bench, usize)>,
    record_mode: RecordMode,
    scale: Scale,
) -> usize {
    let jobs = fig4_grid(record_mode);
    let results = sweep(&jobs, workers, cache, |(bench, n)| {
        translate(&bench.trace(*n, scale), Default::default())
    });
    results.iter().filter(|r| r.is_ok()).count()
}

fn run_grid(workers: usize, cache: &SharedTraceCache<(Bench, usize)>, scale: Scale) -> usize {
    run_grid_mode(workers, cache, RecordMode::Full, scale)
}

fn timed(label: &str, runs: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        let ok = black_box(f());
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(ok, 42, "all Fig-4 jobs must succeed");
        best = best.min(secs);
    }
    println!("{label:40} {best:>10.3} s");
    best
}

fn main() {
    // `cargo bench --bench sweep -- --workers N` overrides the pool size
    // (useful for scaling curves); default is all available cores.
    // `--scale tiny|small|paper` selects the problem scale — `paper` is
    // the nightly trajectory entry (`BENCH_sweep_paper.json`).
    let args: Vec<String> = std::env::args().collect();
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(extrap_core::sweep::default_workers);
    let scale = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("small") => Scale::Small,
        Some("tiny") => Scale::Tiny,
        Some("paper") => Scale::Paper,
        Some(other) => {
            eprintln!("unknown scale {other:?} (tiny|small|paper)");
            std::process::exit(2);
        }
    };
    println!(
        "## sweep — Fig-4 grid (7 benchmarks x {} proc counts, {scale:?} scale)",
        PROCS.len()
    );
    println!(
        "workers: {workers} (available parallelism: {})",
        extrap_core::sweep::default_workers()
    );

    // Cold cache: translation + extrapolation both ride the pool.
    let serial_cold = timed("cold cache, 1 worker", 3, || {
        run_grid(1, &SharedTraceCache::new(), scale)
    });
    let parallel_cold = timed(&format!("cold cache, {workers} workers"), 3, || {
        run_grid(workers, &SharedTraceCache::new(), scale)
    });

    // Warm cache: pure extrapolation fan-out over the shared traces.
    let warm = SharedTraceCache::new();
    run_grid(1, &warm, scale);
    let serial_warm = timed("warm cache, 1 worker", 5, || run_grid(1, &warm, scale));
    let parallel_warm = timed(&format!("warm cache, {workers} workers"), 5, || {
        run_grid(workers, &warm, scale)
    });

    println!(
        "speedup: cold {:.2}x, warm {:.2}x at {workers} workers",
        serial_cold / parallel_cold,
        serial_warm / parallel_warm
    );

    // The harness-based rows, for the uniform report format (and the
    // `--json` trajectory file the CI regression gate reads).
    let mut h = Harness::from_args("sweep");
    let warm2 = SharedTraceCache::new();
    run_grid(1, &warm2, scale);
    h.bench("fig4_grid_warm_serial", || run_grid(1, &warm2, scale));
    h.bench("fig4_grid_warm_pool", || run_grid(workers, &warm2, scale));
    h.bench("fig4_grid_warm_serial_metrics_only", || {
        run_grid_mode(1, &warm2, RecordMode::MetricsOnly, scale)
    });
    h.bench("fig4_grid_warm_pool_metrics_only", || {
        run_grid_mode(workers, &warm2, RecordMode::MetricsOnly, scale)
    });

    // Streaming lint: the chunked-reader + incremental-pass hot path
    // behind `extrap lint`, over an in-memory Fig-4-sized program trace
    // (arena recycled across iterations, as the CLI does across files).
    let lint_trace = Bench::Grid.trace(8, scale);
    let lint_bytes = extrap_trace::format::encode_program(&lint_trace);
    let mut lint_arena = extrap_trace::stream::StreamArena::new();
    h.bench_throughput(
        "lint_stream",
        Throughput::Bytes(lint_bytes.len() as u64),
        || {
            let src = extrap_trace::stream::SliceSource(&lint_bytes);
            let arena =
                std::mem::replace(&mut lint_arena, extrap_trace::stream::StreamArena::new());
            let mut s = extrap_trace::stream::ProgramStream::with_arena(src, arena).unwrap();
            let report = extrap_lint::lint_program_stream(&mut s).unwrap();
            let n = report.diagnostics.len();
            lint_arena = s.into_arena();
            n
        },
    );
    h.finish();
}
