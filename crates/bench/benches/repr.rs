//! Representative-region simulation vs exact replay: the warm-cache
//! sweep over the repetition-heavy benchmarks (Mgrid, Poisson, Grid,
//! Sparse, Sort) × 6 processor counts, once per strategy.
//!
//! The caches are primed first, so the timed region is extrapolation
//! only — exactly the work `Strategy = repr` is meant to collapse.  The
//! trailing summary prints the measured exact/repr speedup; the
//! `--json` trajectory rows feed the CI regression gate
//! (`BENCH_repr.json`) and the nightly paper-scale run.
//!
//! Run with `cargo bench --bench repr [-- --scale paper] [--workers N]`.

use extrap_bench::harness::Harness;
use extrap_core::{machine, sweep, RecordMode, SharedTraceCache, SimStrategy, SweepGrid};
use extrap_trace::translate;
use extrap_workloads::{Bench, Scale};
use std::hint::black_box;
use std::time::Instant;

const PROCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The sweep population: every benchmark with barrier-epoch repetition
/// to exploit, plus Poisson (which falls back — its cost is the honest
/// price of the fallback check).
const BENCHES: [Bench; 5] = [
    Bench::Mgrid,
    Bench::Poisson,
    Bench::Grid,
    Bench::Sparse,
    Bench::Sort,
];

fn grid(benches: &[Bench], strategy: SimStrategy) -> Vec<extrap_core::SweepJob<(Bench, usize)>> {
    let mut params = machine::default_distributed();
    params.record_mode = RecordMode::MetricsOnly;
    params.strategy = strategy;
    SweepGrid::new()
        .workloads(benches.to_vec())
        .procs(PROCS)
        .params(params)
        .jobs()
}

fn run_grid(
    workers: usize,
    cache: &SharedTraceCache<(Bench, usize)>,
    benches: &[Bench],
    strategy: SimStrategy,
    scale: Scale,
) -> usize {
    let jobs = grid(benches, strategy);
    let results = sweep(&jobs, workers, cache, |(bench, n)| {
        translate(&bench.trace(*n, scale), Default::default())
    });
    results.iter().filter(|r| r.is_ok()).count()
}

fn timed(label: &str, runs: usize, expect: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        let ok = black_box(f());
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(ok, expect, "all jobs must succeed");
        best = best.min(secs);
    }
    println!("{label:40} {best:>10.3} s");
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(extrap_core::sweep::default_workers);
    let scale = match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("small") => Scale::Small,
        Some("tiny") => Scale::Tiny,
        Some("paper") => Scale::Paper,
        Some(other) => {
            eprintln!("unknown scale {other:?} (tiny|small|paper)");
            std::process::exit(2);
        }
    };
    // `--benches mgrid,poisson` restricts the population (the nightly
    // paper-scale job measures the iterative pair on its own).
    let benches: Vec<Bench> = match args
        .iter()
        .position(|a| a == "--benches")
        .and_then(|i| args.get(i + 1))
    {
        None => BENCHES.to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| {
                Bench::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(name.trim()))
                    .unwrap_or_else(|| {
                        eprintln!("unknown benchmark {name:?}");
                        std::process::exit(2);
                    })
            })
            .collect(),
    };
    println!(
        "## repr — representative vs exact sweep ({} benchmarks x {} proc counts, {scale:?} scale)",
        benches.len(),
        PROCS.len()
    );
    println!("workers: {workers}");

    // Prime translations (and, for repr, the memoized cluster plans) so
    // the timed region is pure simulation.
    let warm = SharedTraceCache::new();
    let expect = benches.len() * PROCS.len();
    run_grid(1, &warm, &benches, SimStrategy::Exact, scale);
    run_grid(1, &warm, &benches, SimStrategy::representative(), scale);

    let exact = timed("warm cache, exact, 1 worker", 5, expect, || {
        run_grid(1, &warm, &benches, SimStrategy::Exact, scale)
    });
    let repr = timed("warm cache, repr, 1 worker", 5, expect, || {
        run_grid(1, &warm, &benches, SimStrategy::representative(), scale)
    });
    println!(
        "speedup: repr {:.2}x over exact (serial, warm)",
        exact / repr
    );

    let mut h = Harness::from_args("repr");
    h.bench("repr_grid_warm_exact_serial", || {
        run_grid(1, &warm, &benches, SimStrategy::Exact, scale)
    });
    h.bench("repr_grid_warm_repr_serial", || {
        run_grid(1, &warm, &benches, SimStrategy::representative(), scale)
    });
    h.bench("repr_grid_warm_repr_pool", || {
        run_grid(
            workers,
            &warm,
            &benches,
            SimStrategy::representative(),
            scale,
        )
    });
    h.finish();
}
