#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # extrap-workloads — the pC++ benchmark suite
//!
//! Rust reimplementations of the benchmarks the paper uses (Table 2),
//! written against the `pcpp-rt` object-parallel runtime so that running
//! them produces instrumented 1-processor traces ready for extrapolation:
//!
//! | Benchmark | Paper description                               | Module |
//! |-----------|--------------------------------------------------|--------|
//! | Embar     | NAS "embarrassingly parallel" benchmark           | [`embar`] |
//! | Cyclic    | Cyclic reduction computation                      | [`cyclic`] |
//! | Sparse    | NAS random sparse conjugate gradient benchmark    | [`sparse`] |
//! | Grid      | Poisson equation on a two-dimensional grid        | [`grid`] |
//! | Mgrid     | Multigrid solver benchmark                        | [`mgrid`] |
//! | Poisson   | Fast Poisson solver                               | [`poisson`] |
//! | Sort      | Bitonic sort module                               | [`sort`] |
//! | Matmul    | §4.2 validation program (9 data distributions)    | [`matmul`] |
//!
//! Every benchmark performs the *real* computation (results are checked
//! by its tests) while charging virtual time through the host
//! [`pcpp_rt::WorkModel`], so the recorded traces are deterministic.

pub mod cyclic;
pub mod embar;
pub mod grid;
pub mod matmul;
pub mod mgrid;
pub mod poisson;
pub mod registry;
pub mod sort;
pub mod sparse;
pub mod util;

pub use registry::{Bench, Scale};
