//! **Sparse** — the NAS random sparse conjugate-gradient benchmark.
//!
//! Conjugate gradient on a randomly structured, symmetric, diagonally
//! dominant sparse matrix.  Each iteration's sparse mat-vec first
//! *gathers* the remote blocks of `p` (the random column pattern touches
//! nearly every block, so the gather is effectively an all-gather of
//! whole vector blocks — large remote element transfers), then the two
//! CG dot products run through master-combine reductions.  The mix of
//! bulk communication and frequent reductions gives *Sparse* its
//! middling speedup in Fig. 4.

use crate::util::{block_range, Reduction, Rng64};
use extrap_trace::ProgramTrace;
use pcpp_rt::{Collection, Distribution, Index2, Program};

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct SparseConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Off-diagonal nonzeros per row (approximate, before symmetrization).
    pub nnz_per_row: usize,
    /// CG iterations.
    pub iters: usize,
    /// RNG seed for the matrix structure.
    pub seed: u64,
}

impl Default for SparseConfig {
    fn default() -> SparseConfig {
        SparseConfig {
            n: 512,
            nnz_per_row: 8,
            iters: 8,
            seed: 1_618,
        }
    }
}

/// A sparse row: `(col, value)` pairs, diagonal included.
type SparseRow = Vec<(u32, f64)>;

/// Builds the symmetric positive-definite matrix deterministically.
pub fn build_matrix(config: &SparseConfig) -> Vec<SparseRow> {
    let n = config.n;
    let mut rng = Rng64::new(config.seed);
    let mut entries: Vec<std::collections::BTreeMap<u32, f64>> =
        vec![std::collections::BTreeMap::new(); n];
    for i in 0..n {
        for _ in 0..config.nnz_per_row {
            let j = rng.below(n);
            if j == i {
                continue;
            }
            let v = -(0.1 + 0.9 * rng.next_f64());
            entries[i].insert(j as u32, v);
            entries[j].insert(i as u32, v);
        }
    }
    // Diagonal dominance makes the matrix SPD.
    (0..n)
        .map(|i| {
            let off: f64 = entries[i].values().map(|v| v.abs()).sum();
            let mut row: SparseRow = vec![(i as u32, off + 1.0)];
            row.extend(entries[i].iter().map(|(&c, &v)| (c, v)));
            row.sort_unstable_by_key(|e| e.0);
            row
        })
        .collect()
}

/// Right-hand side.
fn rhs(i: usize) -> f64 {
    1.0 + ((i as f64) * 0.61).cos() * 0.3
}

/// Runs CG; returns the trace and the solution vector.
pub fn run(n_threads: usize, config: &SparseConfig) -> (ProgramTrace, Vec<f64>) {
    let n = config.n;
    let per = n.div_ceil(n_threads);
    let matrix = build_matrix(config);
    // Per-thread state blocks: x, r, q, p, each one element per thread.
    let block_of = |init: &dyn Fn(usize) -> f64| {
        let vals: Vec<Vec<f64>> = (0..n_threads)
            .map(|t| {
                let lo = (t * per).min(n);
                let hi = (lo + per).min(n);
                (lo..hi).map(init).collect()
            })
            .collect();
        Collection::<Vec<f64>>::build(Distribution::block_1d(n_threads, n_threads), move |i| {
            vals[i.0].clone()
        })
    };
    let xs = block_of(&|_| 0.0);
    let rs = block_of(&rhs);
    let ps = block_of(&rhs);
    let qs = block_of(&|_| 0.0);
    let rows = Collection::<SparseRow>::build(Distribution::block_1d(n, n_threads), |i| {
        matrix[i.0].clone()
    });
    let red = Reduction::new(n_threads);
    let iters = config.iters;

    let trace = Program::new(n_threads).run(|ctx| {
        let me = ctx.id();
        let my = block_range(n, n_threads, me);
        let my_slot = Index2(me.index(), 0);
        let mut rr = {
            let mut acc = 0.0;
            rs.read(ctx, my_slot, |r| {
                for v in r {
                    acc += v * v;
                }
            });
            ctx.charge_flops(2 * my.len() as u64);
            red.sum(ctx, acc)
        };
        for _ in 0..iters {
            // Gather the full p vector: every remote block is one bulk
            // element transfer (the random pattern needs them all).
            let mut full_p = vec![0.0; n];
            for owner in 0..ctx.n_threads() {
                let lo = (owner * per).min(n);
                let hi = (lo + per).min(n);
                if lo == hi {
                    continue;
                }
                ps.read(ctx, Index2(owner, 0), |blk| {
                    full_p[lo..hi].copy_from_slice(blk);
                });
                ctx.charge_mem_ops((hi - lo) as u64 / 8);
            }
            // q = A p over the local rows.
            let mut q_local = Vec::with_capacity(my.len());
            for i in my.clone() {
                let (sum, nnz) = rows.read(ctx, Index2(i, 0), |row| {
                    let mut s = 0.0;
                    for &(c, v) in row {
                        s += v * full_p[c as usize];
                    }
                    (s, row.len())
                });
                ctx.charge_flops(2 * nnz as u64);
                q_local.push(sum);
            }
            qs.write(ctx, my_slot, |q| q.copy_from_slice(&q_local));
            ctx.barrier();
            // alpha = rr / (p . q)
            let mut pq = 0.0;
            ps.read(ctx, my_slot, |p| {
                for (a, b) in p.iter().zip(&q_local) {
                    pq += a * b;
                }
            });
            ctx.charge_flops(2 * my.len() as u64);
            let pq = red.sum(ctx, pq);
            let alpha = rr / pq;
            // x += alpha p ; r -= alpha q ; rr' = r . r
            let p_local = ps.read(ctx, my_slot, |p| p.clone());
            let mut rr_new = 0.0;
            xs.write(ctx, my_slot, |x| {
                for (xv, pv) in x.iter_mut().zip(&p_local) {
                    *xv += alpha * pv;
                }
            });
            rs.write(ctx, my_slot, |r| {
                for (rv, qv) in r.iter_mut().zip(&q_local) {
                    *rv -= alpha * qv;
                    rr_new += *rv * *rv;
                }
            });
            ctx.charge_flops(6 * my.len() as u64);
            let rr_next = red.sum(ctx, rr_new);
            let beta = rr_next / rr;
            rr = rr_next;
            // p = r + beta p
            let r_local = rs.read(ctx, my_slot, |r| r.clone());
            ps.write(ctx, my_slot, |p| {
                for (pv, rv) in p.iter_mut().zip(&r_local) {
                    *pv = rv + beta * *pv;
                }
            });
            ctx.charge_flops(2 * my.len() as u64);
            ctx.barrier();
        }
    });

    let mut solution = vec![0.0; n];
    for t in 0..n_threads {
        let lo = (t * per).min(n);
        let hi = (lo + per).min(n);
        xs.peek(Index2(t, 0), |blk| solution[lo..hi].copy_from_slice(blk));
    }
    (trace, solution)
}

/// Relative residual `‖b − Ax‖₂ / ‖b‖₂`.
pub fn relative_residual(config: &SparseConfig, x: &[f64]) -> f64 {
    let matrix = build_matrix(config);
    let n = config.n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, row) in matrix.iter().enumerate().take(n) {
        let ax: f64 = row.iter().map(|&(c, v)| v * x[c as usize]).sum();
        let b = rhs(i);
        num += (b - ax) * (b - ax);
        den += b * b;
    }
    (num / den).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric_and_dominant() {
        let cfg = SparseConfig {
            n: 64,
            ..SparseConfig::default()
        };
        let m = build_matrix(&cfg);
        for (i, row) in m.iter().enumerate() {
            let diag = row.iter().find(|e| e.0 as usize == i).unwrap().1;
            let off: f64 = row
                .iter()
                .filter(|e| e.0 as usize != i)
                .map(|e| e.1.abs())
                .sum();
            assert!(diag > off, "row {i} not dominant");
            for &(c, v) in row {
                let back = m[c as usize]
                    .iter()
                    .find(|e| e.0 as usize == i)
                    .expect("symmetric entry");
                assert_eq!(back.1, v);
            }
        }
    }

    #[test]
    fn cg_reduces_the_residual() {
        let cfg = SparseConfig {
            n: 96,
            nnz_per_row: 3,
            iters: 12,
            seed: 5,
        };
        let (_, x) = run(4, &cfg);
        let rel = relative_residual(&cfg, &x);
        assert!(rel < 1e-4, "relative residual {rel}");
    }

    #[test]
    fn thread_count_invariant_numerics() {
        let cfg = SparseConfig {
            n: 64,
            nnz_per_row: 3,
            iters: 5,
            seed: 9,
        };
        let (_, a) = run(1, &cfg);
        let (_, b) = run(8, &cfg);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn gather_is_bulk_blocks_not_scalars() {
        let cfg = SparseConfig {
            n: 64,
            nnz_per_row: 3,
            iters: 2,
            seed: 5,
        };
        let (trace, _) = run(4, &cfg);
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        // Per iteration each thread reads 3 remote p-blocks; plus the
        // reduction traffic.  Far fewer events than one per nonzero.
        let remote = stats.total_remote_accesses();
        assert!(remote < 150, "expected bulk transfers, got {remote} events");
        // Blocks are 16 doubles = 128 bytes.
        let t1 = stats.thread(extrap_time::ThreadId(1));
        assert!(t1.actual_bytes >= 2 * 3 * 128, "bytes {}", t1.actual_bytes);
        // Initial rr reduction + per iteration: matvec barrier + two
        // reductions (2 barriers each) + closing barrier.
        assert_eq!(stats.barriers(), 2 + 6 * 2);
    }

    #[test]
    fn uneven_block_sizes_still_solve() {
        let cfg = SparseConfig {
            n: 50,
            nnz_per_row: 3,
            iters: 20,
            seed: 2,
        };
        let (_, x) = run(3, &cfg);
        assert!(relative_residual(&cfg, &x) < 1e-6);
    }
}
