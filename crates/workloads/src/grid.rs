//! **Grid** — Poisson equation on a two-dimensional grid.
//!
//! Jacobi relaxation of `∇²u = f` on a `P×P` interior with zero boundary.
//! The grid is split into `s×s` subgrid *elements* (`s = ⌊√n⌋`, the pC++
//! (BLOCK, BLOCK) thread grid), so a remote access's **declared** size is
//! the whole subgrid — tens of kilobytes — while the **actual** transfer
//! is one boundary row or column (`m·8` bytes).  This is precisely the
//! compiler measurement abstraction the paper's §4.1 investigation
//! uncovers.
//!
//! Threads outside the `s×s` grid own nothing and just synchronize (the
//! no-speedup-from-4-to-8 artifact).
//!
//! Two sweep structures are provided.  The **fused** form (the default,
//! matching the pC++ code's single relaxation method) reads the four
//! neighbour edges inline and updates in place with *one* barrier per
//! iteration — remote requests therefore arrive while owners are in
//! their update loops, which is what makes the Fig. 8 service-policy
//! comparison meaningful.  Values follow a deterministic chaotic
//! (Gauss–Seidel-flavoured) relaxation that converges to the same fixed
//! point.  The **two-phase** form (`fused = false`) gathers all halos,
//! barriers, then updates — textbook Jacobi, bit-identical to the
//! sequential reference for any thread count, used by the numerical
//! tests.

use extrap_trace::ProgramTrace;
use pcpp_rt::sync::Mutex;
use pcpp_rt::{Collection, Distribution, Index2, Program};

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    /// Interior size `P` (must be divisible by `⌊√n⌋` for every thread
    /// count used).
    pub size: usize,
    /// Relaxation iterations.
    pub iters: usize,
    /// Fused single-barrier sweeps (default) vs two-phase exact Jacobi.
    pub fused: bool,
}

impl Default for GridConfig {
    fn default() -> GridConfig {
        GridConfig {
            size: 40,
            iters: 60,
            fused: true,
        }
    }
}

/// Source term.
fn f_term() -> f64 {
    2.0
}

/// Runs the benchmark; returns the trace and the final full grid
/// (row-major `P×P`).
pub fn run(n_threads: usize, config: &GridConfig) -> (ProgramTrace, Vec<f64>) {
    let p = config.size;
    let s = pcpp_rt::distribution::isqrt(n_threads);
    assert!(
        p.is_multiple_of(s),
        "grid size {p} must divide evenly into a {s}x{s} thread grid"
    );
    let m = p / s; // subgrid side
    let iters = config.iters;
    let h2 = 1.0 / ((p + 1) as f64 * (p + 1) as f64);

    // One subgrid element per (BLOCK, BLOCK) position, row-major m×m.
    let grid = Collection::<Vec<f64>>::build(Distribution::block_block(s, s, n_threads), |_| {
        vec![0.0; m * m]
    });
    // Scratch for the halos each thread gathered in the read phase.
    let halos: Mutex<Vec<Halo>> = Mutex::new((0..n_threads).map(|_| Halo::new(m)).collect());

    struct Halo {
        top: Vec<f64>,
        bottom: Vec<f64>,
        left: Vec<f64>,
        right: Vec<f64>,
    }
    impl Halo {
        fn new(m: usize) -> Halo {
            Halo {
                top: vec![0.0; m],
                bottom: vec![0.0; m],
                left: vec![0.0; m],
                right: vec![0.0; m],
            }
        }
    }

    let fused = config.fused;
    let trace = Program::new(n_threads).run(|ctx| {
        let id = ctx.id();
        let my_pos = grid.local_indices(id).next();
        let row_bytes = (m * 8) as u32;
        for _ in 0..iters {
            // Gather the four neighbour edges.
            if let Some(pos) = my_pos {
                let Index2(r, c) = pos;
                let mut halo = Halo::new(m);
                if r > 0 {
                    halo.top = grid.read_part(ctx, Index2(r - 1, c), row_bytes, |v| {
                        v[(m - 1) * m..].to_vec()
                    });
                }
                if r + 1 < s {
                    halo.bottom =
                        grid.read_part(ctx, Index2(r + 1, c), row_bytes, |v| v[..m].to_vec());
                }
                if c > 0 {
                    halo.left = grid.read_part(ctx, Index2(r, c - 1), row_bytes, |v| {
                        (0..m).map(|i| v[i * m + m - 1]).collect()
                    });
                }
                if c + 1 < s {
                    halo.right = grid.read_part(ctx, Index2(r, c + 1), row_bytes, |v| {
                        (0..m).map(|i| v[i * m]).collect()
                    });
                }
                halos.lock()[id.index()] = halo;
            }
            if !fused {
                // Two-phase Jacobi: everyone snapshots old halos first.
                ctx.barrier();
            }
            // Update the interior from the gathered halos.
            if let Some(pos) = my_pos {
                let halo_guard = halos.lock();
                let halo = &halo_guard[id.index()];
                let old = grid.read(ctx, pos, |v| v.clone());
                let mut new = vec![0.0; m * m];
                for i in 0..m {
                    for j in 0..m {
                        let up = if i > 0 {
                            old[(i - 1) * m + j]
                        } else {
                            halo.top[j]
                        };
                        let down = if i + 1 < m {
                            old[(i + 1) * m + j]
                        } else {
                            halo.bottom[j]
                        };
                        let left = if j > 0 {
                            old[i * m + j - 1]
                        } else {
                            halo.left[i]
                        };
                        let right = if j + 1 < m {
                            old[i * m + j + 1]
                        } else {
                            halo.right[i]
                        };
                        new[i * m + j] = 0.25 * (up + down + left + right + h2 * f_term());
                    }
                }
                ctx.charge_flops(6 * (m * m) as u64);
                drop(halo_guard);
                grid.write(ctx, pos, |v| *v = new);
            }
            ctx.barrier();
        }
    });

    // Reassemble the full grid (uninstrumented).
    let mut full = vec![0.0; p * p];
    for r in 0..s {
        for c in 0..s {
            grid.peek(Index2(r, c), |v| {
                for i in 0..m {
                    for j in 0..m {
                        full[(r * m + i) * p + (c * m + j)] = v[i * m + j];
                    }
                }
            });
        }
    }
    (trace, full)
}

/// Sequential Jacobi reference with identical iteration count.
pub fn reference(config: &GridConfig) -> Vec<f64> {
    let p = config.size;
    let h2 = 1.0 / ((p + 1) as f64 * (p + 1) as f64);
    let at = |g: &[f64], i: isize, j: isize| -> f64 {
        if i < 0 || j < 0 || i as usize >= p || j as usize >= p {
            0.0
        } else {
            g[i as usize * p + j as usize]
        }
    };
    let mut cur = vec![0.0; p * p];
    for _ in 0..config.iters {
        let mut next = vec![0.0; p * p];
        for i in 0..p {
            for j in 0..p {
                let (i, j) = (i as isize, j as isize);
                next[i as usize * p + j as usize] = 0.25
                    * (at(&cur, i - 1, j)
                        + at(&cur, i + 1, j)
                        + at(&cur, i, j - 1)
                        + at(&cur, i, j + 1)
                        + h2 * f_term());
            }
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_trace::{EventKind, TraceStats};

    #[test]
    fn matches_sequential_reference_for_every_thread_count() {
        let cfg = GridConfig {
            size: 8,
            iters: 20,
            fused: false,
        };
        let expected = reference(&cfg);
        for threads in [1, 4, 8, 16] {
            let (_, got) = run(threads, &cfg);
            for (a, b) in got.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-12, "threads {threads}");
            }
        }
    }

    #[test]
    fn idle_threads_produce_no_remote_traffic() {
        // 8 threads -> 2x2 busy grid, 4 idle threads.
        let cfg = GridConfig {
            size: 8,
            iters: 4,
            fused: true,
        };
        let (trace, _) = run(8, &cfg);
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = TraceStats::from_set(&ts);
        for t in 4..8 {
            let th = stats.thread(extrap_time::ThreadId(t));
            assert_eq!(th.remote_reads, 0);
            assert_eq!(th.compute.as_ns(), 0);
        }
    }

    #[test]
    fn declared_vs_actual_size_gap() {
        let cfg = GridConfig {
            size: 16,
            iters: 2,
            fused: true,
        };
        let (trace, _) = run(16, &cfg);
        let remote = trace
            .records
            .iter()
            .find_map(|r| match r.kind {
                EventKind::RemoteRead {
                    declared_bytes,
                    actual_bytes,
                    ..
                } => Some((declared_bytes, actual_bytes)),
                _ => None,
            })
            .expect("grid run has remote reads");
        // Subgrid 4x4 of f64: declared 128 bytes; edge: 32 bytes.
        assert_eq!(remote.0, 128);
        assert_eq!(remote.1, 32);
    }

    #[test]
    fn barrier_count_per_iteration() {
        // Fused sweeps barrier once per iteration; two-phase Jacobi
        // twice.
        let fused = GridConfig {
            size: 8,
            iters: 5,
            fused: true,
        };
        let (trace, _) = run(4, &fused);
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        assert_eq!(TraceStats::from_set(&ts).barriers(), 5);
        let two_phase = GridConfig {
            fused: false,
            ..fused
        };
        let (trace, _) = run(4, &two_phase);
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        assert_eq!(TraceStats::from_set(&ts).barriers(), 10);
    }

    #[test]
    fn solution_moves_toward_poisson_solution() {
        let cfg = GridConfig {
            size: 8,
            iters: 200,
            fused: true,
        };
        let (_, got) = run(4, &cfg);
        // With f=2 and zero boundary the solution is positive inside and
        // symmetric; check center is the max and positive.
        let p = cfg.size;
        let center = got[(p / 2) * p + p / 2];
        assert!(center > 0.0);
        assert!(got.iter().all(|&v| v <= center + 1e-12));
    }
}
