//! **Cyclic** — cyclic reduction for batched tridiagonal systems.
//!
//! The classic odd-even cyclic reduction algorithm on `N = 2^k − 1` rows,
//! solving `batch` independent systems that share the same tridiagonal
//! matrix but have different right-hand sides (the usual vectorized
//! formulation — e.g. line solves of an ADI sweep).  `log N`
//! forward-elimination levels are followed by `log N` back-substitution
//! levels, with a global barrier per level and remote row accesses at
//! distance `2^(l−1)` — parallelism halves at each deeper level, giving
//! the growing synchronization/communication share typical of this
//! benchmark.

use extrap_trace::ProgramTrace;
use pcpp_rt::{Collection, Distribution, Index2, Program};

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct CyclicConfig {
    /// log2(N+1): the system has `2^log2_size − 1` rows.
    pub log2_size: u32,
    /// Number of independent right-hand sides solved simultaneously.
    pub batch: usize,
}

impl Default for CyclicConfig {
    fn default() -> CyclicConfig {
        CyclicConfig {
            log2_size: 8,
            batch: 16,
        }
    }
}

/// Deterministic right-hand side for system `s`, row `i`.
fn rhs(i: usize, s: usize) -> f64 {
    ((i as f64) * 0.37 + s as f64).sin() + 1.5
}

/// Row layout: `[a, b, c, d_0, .., d_{batch-1}]`.
const A: usize = 0;
const B: usize = 1;
const C: usize = 2;
const D: usize = 3;

/// Runs cyclic reduction on `n_threads`; returns the trace and the
/// solutions (`batch` vectors of length `N`, indexed `[s][i]`).
pub fn run(n_threads: usize, config: &CyclicConfig) -> (ProgramTrace, Vec<Vec<f64>>) {
    let k = config.log2_size;
    let batch = config.batch.max(1);
    assert!(k >= 2, "system too small");
    let n = (1usize << k) - 1;
    let rows = Collection::<Vec<f64>>::build(Distribution::block_1d(n, n_threads), |i| {
        let a = if i.0 == 0 { 0.0 } else { 1.0 };
        let c = if i.0 == n - 1 { 0.0 } else { 1.0 };
        let mut row = vec![a, 4.0, c];
        row.extend((0..batch).map(|s| rhs(i.0, s)));
        row
    });
    let xs =
        Collection::<Vec<f64>>::build(Distribution::block_1d(n, n_threads), |_| vec![0.0; batch]);

    let trace = Program::new(n_threads).run(|ctx| {
        // Forward elimination.
        for l in 1..k {
            let stride = 1usize << l;
            let h = stride >> 1;
            for idx in rows.local_indices(ctx.id()) {
                let i = idx.0;
                if (i + 1) % stride != 0 {
                    continue;
                }
                let lo = rows.get(ctx, Index2(i - h, 0));
                let hi = if i + h < n {
                    rows.get(ctx, Index2(i + h, 0))
                } else {
                    vec![0.0; 3 + batch]
                };
                rows.write(ctx, idx, |me| {
                    let alpha = -me[A] / lo[B];
                    let beta = if i + h < n { -me[C] / hi[B] } else { 0.0 };
                    me[A] = alpha * lo[A];
                    me[B] += alpha * lo[C] + beta * hi[A];
                    me[C] = beta * hi[C];
                    for s in 0..batch {
                        me[D + s] += alpha * lo[D + s] + beta * hi[D + s];
                    }
                });
                ctx.charge_flops(10 + 4 * batch as u64);
            }
            ctx.barrier();
        }
        // Solve the single remaining middle row.
        let mid = (1usize << (k - 1)) - 1;
        if rows.owner(Index2(mid, 0)) == ctx.id() {
            let r = rows.get(ctx, Index2(mid, 0));
            xs.write(ctx, Index2(mid, 0), |x| {
                for s in 0..batch {
                    x[s] = r[D + s] / r[B];
                }
            });
            ctx.charge_flops(batch as u64);
        }
        ctx.barrier();
        // Back substitution.
        for l in (1..k).rev() {
            let stride = 1usize << l;
            let h = stride >> 1;
            for idx in xs.local_indices(ctx.id()) {
                let i = idx.0;
                if (i + 1) % stride != h {
                    continue;
                }
                let r = rows.get(ctx, idx);
                let xl = if i >= h {
                    xs.read(ctx, Index2(i - h, 0), |x| x.clone())
                } else {
                    vec![0.0; batch]
                };
                let xr = if i + h < n {
                    xs.read(ctx, Index2(i + h, 0), |x| x.clone())
                } else {
                    vec![0.0; batch]
                };
                xs.write(ctx, idx, |x| {
                    for s in 0..batch {
                        x[s] = (r[D + s] - r[A] * xl[s] - r[C] * xr[s]) / r[B];
                    }
                });
                ctx.charge_flops(5 * batch as u64);
            }
            ctx.barrier();
        }
    });

    let solutions: Vec<Vec<f64>> = (0..batch)
        .map(|s| (0..n).map(|i| xs.peek(Index2(i, 0), |x| x[s])).collect())
        .collect();
    (trace, solutions)
}

/// Residual `max_i |a·x[i−1] + b·x[i] + c·x[i+1] − d[i]|` of system `s`.
pub fn residual(solution: &[f64], s: usize) -> f64 {
    let n = solution.len();
    let x = |i: isize| -> f64 {
        if i < 0 || i as usize >= n {
            0.0
        } else {
            solution[i as usize]
        }
    };
    (0..n)
        .map(|i| {
            let a = if i == 0 { 0.0 } else { 1.0 };
            let c = if i == n - 1 { 0.0 } else { 1.0 };
            (a * x(i as isize - 1) + 4.0 * solution[i] + c * x(i as isize + 1) - rhs(i, s)).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_every_system_in_the_batch() {
        for threads in [1, 2, 4] {
            let cfg = CyclicConfig {
                log2_size: 6,
                batch: 3,
            };
            let (_, xs) = run(threads, &cfg);
            assert_eq!(xs.len(), 3);
            for (s, x) in xs.iter().enumerate() {
                assert_eq!(x.len(), 63);
                let r = residual(x, s);
                assert!(r < 1e-9, "threads {threads} system {s} residual {r}");
            }
        }
    }

    #[test]
    fn solution_is_thread_count_invariant() {
        let cfg = CyclicConfig {
            log2_size: 6,
            batch: 2,
        };
        let (_, x1) = run(1, &cfg);
        let (_, x4) = run(4, &cfg);
        for (a, b) in x1.iter().flatten().zip(x4.iter().flatten()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_has_a_barrier_per_level() {
        let cfg = CyclicConfig {
            log2_size: 6,
            batch: 2,
        };
        let (trace, _) = run(4, &cfg);
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        // (k-1) forward + 1 middle + (k-1) backward = 2k-1 = 11 barriers.
        assert_eq!(stats.barriers(), 11);
        assert!(stats.total_remote_accesses() > 0);
    }

    #[test]
    fn batch_scales_transfer_sizes_not_event_counts() {
        let mk = |batch| {
            let (trace, _) = run(
                4,
                &CyclicConfig {
                    log2_size: 6,
                    batch,
                },
            );
            let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
            let st = extrap_trace::TraceStats::from_set(&ts);
            (st.total_remote_accesses(), st.total_actual_bytes())
        };
        let (events_small, bytes_small) = mk(2);
        let (events_big, bytes_big) = mk(16);
        assert_eq!(events_small, events_big);
        assert!(bytes_big > bytes_small * 3);
    }
}
