//! The benchmark registry: Table 2 of the paper as a runnable suite.

use crate::{cyclic, embar, grid, mgrid, poisson, sort, sparse};
use extrap_trace::ProgramTrace;

/// Problem scale for suite runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scale {
    /// Minimal sizes for fast tests.
    Tiny,
    /// Sizes for quick experiment runs.
    #[default]
    Small,
    /// Sizes approximating the paper's workloads.
    Paper,
}

/// The pC++ benchmark suite (Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Bench {
    /// NAS "embarrassingly parallel" benchmark.
    Embar,
    /// Cyclic reduction computation.
    Cyclic,
    /// NAS random sparse conjugate gradient benchmark.
    Sparse,
    /// Poisson equation on a two-dimensional grid.
    Grid,
    /// NAS multigrid solver benchmark.
    Mgrid,
    /// Fast Poisson solver.
    Poisson,
    /// Bitonic sort module.
    Sort,
}

impl Bench {
    /// Every benchmark, in Table 2 order.
    pub fn all() -> [Bench; 7] {
        [
            Bench::Embar,
            Bench::Cyclic,
            Bench::Sparse,
            Bench::Grid,
            Bench::Mgrid,
            Bench::Poisson,
            Bench::Sort,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Bench::Embar => "Embar",
            Bench::Cyclic => "Cyclic",
            Bench::Sparse => "Sparse",
            Bench::Grid => "Grid",
            Bench::Mgrid => "Mgrid",
            Bench::Poisson => "Poisson",
            Bench::Sort => "Sort",
        }
    }

    /// Table 2 description.
    pub fn description(&self) -> &'static str {
        match self {
            Bench::Embar => "NAS \"embarrassingly parallel\" benchmark",
            Bench::Cyclic => "Cyclic reduction computation",
            Bench::Sparse => "NAS random sparse conjugate gradient benchmark",
            Bench::Grid => "Poisson equation on a two dimensional grid",
            Bench::Mgrid => "NAS multigrid solver benchmark",
            Bench::Poisson => "Fast Poisson solver",
            Bench::Sort => "Bitonic sort module",
        }
    }

    /// Runs the benchmark on `n_threads` at the given scale and returns
    /// the instrumented 1-processor trace.
    pub fn trace(&self, n_threads: usize, scale: Scale) -> ProgramTrace {
        match self {
            Bench::Embar => {
                let pairs = match scale {
                    Scale::Tiny => 50_000,
                    Scale::Small => 200_000,
                    Scale::Paper => 1_000_000,
                };
                embar::run(
                    n_threads,
                    &embar::EmbarConfig {
                        pairs,
                        seed: 271_828,
                    },
                )
                .0
            }
            Bench::Cyclic => {
                let (log2_size, batch) = match scale {
                    Scale::Tiny => (8, 16),
                    Scale::Small => (12, 64),
                    Scale::Paper => (13, 128),
                };
                cyclic::run(n_threads, &cyclic::CyclicConfig { log2_size, batch }).0
            }
            Bench::Sparse => {
                let (n, nnz, iters) = match scale {
                    Scale::Tiny => (256, 8, 4),
                    Scale::Small => (4_096, 16, 10),
                    Scale::Paper => (8_192, 24, 12),
                };
                sparse::run(
                    n_threads,
                    &sparse::SparseConfig {
                        n,
                        nnz_per_row: nnz,
                        iters,
                        seed: 1_618,
                    },
                )
                .0
            }
            Bench::Grid => {
                let (size, iters) = match scale {
                    Scale::Tiny => (80, 10),
                    Scale::Small => (80, 40),
                    Scale::Paper => (160, 100),
                };
                grid::run(
                    n_threads,
                    &grid::GridConfig {
                        size,
                        iters,
                        fused: true,
                    },
                )
                .0
            }
            Bench::Mgrid => {
                let (log2_size, cycles, width) = match scale {
                    Scale::Tiny => (6, 2, 4),
                    Scale::Small => (10, 3, 16),
                    Scale::Paper => (11, 4, 32),
                };
                mgrid::run(
                    n_threads,
                    &mgrid::MgridConfig {
                        log2_size,
                        cycles,
                        smooth: 2,
                        width,
                    },
                )
                .0
            }
            Bench::Poisson => {
                let size = match scale {
                    Scale::Tiny => 24,
                    Scale::Small => 64,
                    Scale::Paper => 96,
                };
                poisson::run(n_threads, &poisson::PoissonConfig { size }).0
            }
            Bench::Sort => {
                let total_keys = match scale {
                    Scale::Tiny => 1 << 13,
                    Scale::Small => 1 << 18,
                    Scale::Paper => 1 << 20,
                };
                sort::run(
                    n_threads,
                    &sort::SortConfig {
                        total_keys,
                        seed: 31_415,
                    },
                )
                .0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_trace_at_tiny_scale() {
        for bench in Bench::all() {
            for threads in [1, 4] {
                let trace = bench.trace(threads, Scale::Tiny);
                assert!(
                    trace.records.len() >= 4,
                    "{} produced a trivial trace",
                    bench.name()
                );
                let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
                assert!(ts.makespan().as_ns() > 0, "{}", bench.name());
            }
        }
    }

    #[test]
    fn names_and_descriptions_are_stable() {
        assert_eq!(Bench::all().len(), 7);
        assert_eq!(Bench::Embar.name(), "Embar");
        assert!(Bench::Sparse.description().contains("conjugate gradient"));
    }

    #[test]
    fn grid_size_divides_all_experiment_thread_grids() {
        // The experiment harness uses 1..32 processors; Grid's sizes must
        // divide by floor(sqrt(n)) for each.
        for scale_size in [40usize, 80, 160] {
            for n in [1usize, 2, 4, 8, 16, 32] {
                let s = pcpp_rt::distribution::isqrt(n);
                assert_eq!(scale_size % s, 0, "size {scale_size} threads {n}");
            }
        }
    }
}
