//! **Sort** — the bitonic sort module.
//!
//! A block-bitonic sort: every thread sorts its local block, then the
//! bitonic merge network runs over the blocks — `log²(n)` merge-split
//! steps, each reading the partner thread's *whole block* (a large
//! remote element transfer) followed by a global barrier.  Thread count
//! must be a power of two, as in the pC++ module.

use crate::util::Rng64;
use extrap_trace::ProgramTrace;
use pcpp_rt::{Collection, Distribution, Index2, Program};

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct SortConfig {
    /// Total keys across all threads (fixed problem size, so processor
    /// scaling is strong scaling; must be divisible by the thread
    /// count).
    pub total_keys: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SortConfig {
    fn default() -> SortConfig {
        SortConfig {
            total_keys: 1 << 14,
            seed: 31_415,
        }
    }
}

/// Merge two sorted blocks and keep the requested half.
fn merge_split(mine: &[u32], other: &[u32], keep_low: bool) -> Vec<u32> {
    let b = mine.len();
    let mut merged = Vec::with_capacity(b * 2);
    let (mut i, mut j) = (0, 0);
    while i < mine.len() && j < other.len() {
        if mine[i] <= other[j] {
            merged.push(mine[i]);
            i += 1;
        } else {
            merged.push(other[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&mine[i..]);
    merged.extend_from_slice(&other[j..]);
    if keep_low {
        merged[..b].to_vec()
    } else {
        merged[b..].to_vec()
    }
}

/// Runs the bitonic sort; returns the trace and the concatenated sorted
/// keys.
///
/// # Panics
/// Panics unless `n_threads` is a power of two.
pub fn run(n_threads: usize, config: &SortConfig) -> (ProgramTrace, Vec<u32>) {
    assert!(
        n_threads.is_power_of_two(),
        "bitonic sort needs a power-of-two thread count"
    );
    assert!(
        config.total_keys.is_multiple_of(n_threads),
        "total keys must divide evenly across threads"
    );
    let b = config.total_keys / n_threads;
    let seed = config.seed;
    let blocks = Collection::<Vec<u32>>::build(Distribution::block_1d(n_threads, n_threads), |i| {
        let mut rng = Rng64::new(seed ^ ((i.0 as u64) << 20));
        (0..b).map(|_| rng.next_u64() as u32).collect()
    });
    let stages = n_threads.trailing_zeros();

    let trace = Program::new(n_threads).run(|ctx| {
        let id = ctx.id().index();
        let me = Index2(id, 0);
        // Local sort: ~B log B integer operations.
        blocks.write(ctx, me, |blk| blk.sort_unstable());
        let logb = (b.max(2) as f64).log2() as u64;
        ctx.charge_int_ops(b as u64 * logb);
        ctx.barrier();
        for k in 1..=stages {
            let ascending = (id >> k) & 1 == 0;
            for j in (0..k).rev() {
                let partner = id ^ (1usize << j);
                let lower = id & (1usize << j) == 0;
                let keep_low = lower == ascending;
                // Read the partner's whole block (large remote element),
                // compute the kept half, then barrier *before* writing so
                // the partner also sees the pre-step block.
                let other = blocks.get(ctx, Index2(partner, 0));
                let kept = blocks.read(ctx, me, |mine| merge_split(mine, &other, keep_low));
                ctx.charge_int_ops(2 * b as u64);
                ctx.barrier();
                blocks.write(ctx, me, |blk| *blk = kept);
                ctx.barrier();
            }
        }
    });

    let mut all = Vec::with_capacity(n_threads * b);
    for t in 0..n_threads {
        blocks.peek(Index2(t, 0), |blk| all.extend_from_slice(blk));
    }
    (trace, all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checksum(v: &[u32]) -> u64 {
        v.iter().map(|&x| x as u64).sum()
    }

    #[test]
    fn sorts_globally() {
        for threads in [1, 2, 4, 8] {
            let cfg = SortConfig {
                total_keys: 256,
                seed: 5,
            };
            let (_, sorted) = run(threads, &cfg);
            assert_eq!(sorted.len(), 256);
            assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "threads {threads}");
        }
    }

    #[test]
    fn preserves_the_multiset() {
        let cfg = SortConfig {
            total_keys: 512,
            seed: 11,
        };
        // Reconstruct the expected input multiset (4 threads of 128).
        let mut expected: Vec<u32> = (0..4)
            .flat_map(|t| {
                let mut rng = Rng64::new(cfg.seed ^ ((t as u64) << 20));
                (0..128).map(|_| rng.next_u64() as u32).collect::<Vec<_>>()
            })
            .collect();
        let (_, sorted) = run(4, &cfg);
        assert_eq!(checksum(&sorted), checksum(&expected));
        expected.sort_unstable();
        assert_eq!(sorted, expected);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let _ = run(3, &SortConfig::default());
    }

    #[test]
    fn trace_has_log_squared_stages() {
        let (trace, _) = run(
            8,
            &SortConfig {
                total_keys: 256,
                seed: 1,
            },
        );
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        // 1 post-local-sort barrier + (1+2+3) merge-split steps with two
        // barriers each (exchange phase, write phase).
        assert_eq!(stats.barriers(), 13);
        // Each step does one whole-block remote read per thread.
        let t0 = stats.thread(extrap_time::ThreadId(0));
        assert_eq!(t0.remote_reads, 6);
        // Block transfers are large: 32 keys * 4 bytes each.
        assert_eq!(t0.actual_bytes, 6 * 32 * 4);
    }

    #[test]
    fn merge_split_halves() {
        let lo = merge_split(&[1, 4, 7], &[2, 3, 9], true);
        let hi = merge_split(&[1, 4, 7], &[2, 3, 9], false);
        assert_eq!(lo, vec![1, 2, 3]);
        assert_eq!(hi, vec![4, 7, 9]);
    }
}
