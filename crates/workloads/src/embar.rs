//! **Embar** — the NAS "embarrassingly parallel" benchmark.
//!
//! Each thread generates uniform pseudo-random pairs, applies the
//! Marsaglia polar (Box–Muller) acceptance test to produce Gaussian
//! deviates, and tallies them into ten annular bins.  The only
//! communication is the final tally reduction — the benchmark should
//! speed up linearly on almost any machine, which is exactly what the
//! paper's Fig. 4 shows.

use crate::util::{Rng64, VecReduction};
use extrap_trace::ProgramTrace;
use pcpp_rt::sync::Mutex;
use pcpp_rt::Program;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct EmbarConfig {
    /// Total candidate pairs across all threads.
    pub pairs: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmbarConfig {
    fn default() -> EmbarConfig {
        EmbarConfig {
            pairs: 50_000,
            seed: 271_828,
        }
    }
}

/// Result of the run (for verification).
#[derive(Clone, Debug, PartialEq)]
pub struct EmbarResult {
    /// Accepted (Gaussian) pair count.
    pub accepted: u64,
    /// Per-bin counts of `max(|x|, |y|)`.
    pub bins: [u64; 10],
    /// Sum of all deviates (checksum).
    pub sum_x: f64,
    /// Sum of squares (checksum).
    pub sum_y: f64,
}

/// Runs Embar on `n_threads` and returns the 1-processor trace plus the
/// numeric result.
pub fn run(n_threads: usize, config: &EmbarConfig) -> (ProgramTrace, EmbarResult) {
    let per_thread = config.pairs.div_ceil(n_threads as u64);
    // One combined tally reduction: 10 bins + sum_x + sum_y + accepted.
    let reduction = VecReduction::new(n_threads, 13);
    let bins_out: Mutex<[f64; 10]> = Mutex::new([0.0; 10]);
    let sums_out: Mutex<(f64, f64, f64)> = Mutex::new((0.0, 0.0, 0.0));
    let seed = config.seed;

    let trace = Program::new(n_threads).run(|ctx| {
        let mut rng = Rng64::new(seed ^ (0x1000 + ctx.id().0 as u64));
        let mut bins = [0u64; 10];
        let mut accepted = 0u64;
        let (mut sx, mut sy) = (0.0f64, 0.0f64);
        for _ in 0..per_thread {
            let a = 2.0 * rng.next_f64() - 1.0;
            let b = 2.0 * rng.next_f64() - 1.0;
            let t = a * a + b * b;
            // ~10 flops per candidate pair (NAS EP inner loop scale).
            ctx.charge_flops(10);
            if t <= 1.0 && t > 0.0 {
                let f = (-2.0 * t.ln() / t).sqrt();
                let (x, y) = (a * f, b * f);
                ctx.charge_flops(8);
                accepted += 1;
                sx += x;
                sy += y;
                let m = x.abs().max(y.abs());
                let bin = (m as usize).min(9);
                bins[bin] += 1;
            }
        }
        // One combined tally reduction (bins, checksums, accepted count).
        let mut partial = [0.0f64; 13];
        for (p, &b) in partial.iter_mut().zip(bins.iter()) {
            *p = b as f64;
        }
        partial[10] = sx;
        partial[11] = sy;
        partial[12] = accepted as f64;
        let totals = reduction.sum(ctx, &partial);
        if ctx.id().0 == 0 {
            let mut bins_total = [0.0f64; 10];
            bins_total.copy_from_slice(&totals[..10]);
            *bins_out.lock() = bins_total;
            *sums_out.lock() = (totals[10], totals[11], totals[12]);
        }
    });

    let totals = bins_out.into_inner();
    let (sum_x, sum_y, accepted) = sums_out.into_inner();
    let mut bins = [0u64; 10];
    for (b, t) in bins.iter_mut().zip(totals.iter()) {
        *b = *t as u64;
    }
    (
        trace,
        EmbarResult {
            accepted: accepted as u64,
            bins,
            sum_x,
            sum_y,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_rate_is_pi_over_four() {
        let cfg = EmbarConfig {
            pairs: 40_000,
            seed: 7,
        };
        let (_, res) = run(4, &cfg);
        let rate = res.accepted as f64 / cfg.pairs as f64;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.02,
            "rate {rate}"
        );
    }

    #[test]
    fn bins_account_for_every_accepted_pair() {
        let (_, res) = run(2, &EmbarConfig::default());
        assert_eq!(res.bins.iter().sum::<u64>(), res.accepted);
        // Nearly all Gaussian maxima fall below 4.
        assert!(res.bins[0] + res.bins[1] + res.bins[2] + res.bins[3] > res.accepted * 99 / 100);
    }

    #[test]
    fn gaussian_checksums_are_centered() {
        let (_, res) = run(
            4,
            &EmbarConfig {
                pairs: 40_000,
                seed: 99,
            },
        );
        // Mean of the deviates should be near zero.
        assert!((res.sum_x / res.accepted as f64).abs() < 0.05);
        assert!((res.sum_y / res.accepted as f64).abs() < 0.05);
    }

    #[test]
    fn trace_is_communication_light() {
        let (trace, _) = run(4, &EmbarConfig::default());
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        // One vector reduction: 2 barriers.
        assert_eq!(stats.barriers(), 2);
        // Communication is a handful of scalars; compute dominates.
        let comm_bytes = stats.total_actual_bytes();
        assert!(comm_bytes < 10_000, "comm bytes {comm_bytes}");
        assert!(stats.total_compute().as_ns() > 1_000_000);
    }

    #[test]
    fn result_is_independent_of_thread_count_partitioning() {
        // Different thread counts repartition the pairs; totals must keep
        // the same acceptance statistics scale (not identical RNG
        // streams, but the same behaviour).
        let (_, r2) = run(2, &EmbarConfig::default());
        let (_, r4) = run(4, &EmbarConfig::default());
        let rate2 = r2.accepted as f64 / EmbarConfig::default().pairs as f64;
        let rate4 = r4.accepted as f64 / EmbarConfig::default().pairs as f64;
        assert!((rate2 - rate4).abs() < 0.03);
    }

    #[test]
    fn deterministic_trace() {
        let cfg = EmbarConfig::default();
        let (a, _) = run(3, &cfg);
        let (b, _) = run(3, &cfg);
        assert_eq!(a, b);
    }
}
