//! Shared helpers for the benchmark suite: deterministic RNG and the
//! master-combine reduction idiom.

use extrap_time::ThreadId;
use pcpp_rt::{Collection, Distribution, Index2, ThreadCtx};

/// A deterministic 64-bit generator (SplitMix64) so every benchmark run
/// is bit-reproducible regardless of thread count.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// A scratch collection for global sum reductions: one partial slot per
/// thread plus a master-owned total slot.
///
/// The total lives in its own element (not slot 0) so that back-to-back
/// reductions are safe: the master only overwrites the total *after* the
/// barrier every reader has already passed, never while a slave still
/// needs the previous value.
pub struct Reduction {
    slots: Collection<f64>,
    total: Collection<f64>,
}

impl Reduction {
    /// One slot per thread, block-distributed so each thread owns its own
    /// slot; the total slot belongs to thread 0.
    pub fn new(n_threads: usize) -> Reduction {
        Reduction {
            slots: Collection::build(Distribution::block_1d(n_threads, n_threads), |_| 0.0),
            total: Collection::build(Distribution::block_1d(1, n_threads), |_| 0.0),
        }
    }

    /// The pC++ reduction idiom: every thread writes its partial locally,
    /// a barrier, thread 0 combines (reading each slave slot remotely)
    /// and writes the total, a second barrier, then every thread reads
    /// the total (remotely for all but thread 0).
    ///
    /// Costs 2 barriers + `2(n−1)` remote accesses, exactly like a
    /// master-combine reduction in the original runtime.
    pub fn sum(&self, ctx: &mut ThreadCtx<'_>, partial: f64) -> f64 {
        let me = ctx.id().index();
        let n = ctx.n_threads();
        self.slots.write(ctx, Index2(me, 0), |v| *v = partial);
        ctx.barrier();
        if me == 0 {
            let mut acc = 0.0;
            for t in 0..n {
                acc += self.slots.read(ctx, Index2(t, 0), |v| *v);
                ctx.charge_flops(1);
            }
            self.total.write(ctx, Index2(0, 0), |v| *v = acc);
        }
        ctx.barrier();
        self.total.read(ctx, Index2(0, 0), |v| *v)
    }
}

/// A vector-valued global sum reduction (one combine for a whole tally
/// array, like NAS EP's bin reduction).
pub struct VecReduction {
    slots: Collection<Vec<f64>>,
    total: Collection<Vec<f64>>,
}

impl VecReduction {
    /// One `width`-wide slot per thread plus the master-owned total.
    pub fn new(n_threads: usize, width: usize) -> VecReduction {
        VecReduction {
            slots: Collection::build(Distribution::block_1d(n_threads, n_threads), |_| {
                vec![0.0; width]
            }),
            total: Collection::build(Distribution::block_1d(1, n_threads), |_| vec![0.0; width]),
        }
    }

    /// Element-wise global sum with the same master-combine protocol as
    /// [`Reduction::sum`]: 2 barriers, `2(n−1)` remote vector transfers.
    pub fn sum(&self, ctx: &mut ThreadCtx<'_>, partial: &[f64]) -> Vec<f64> {
        let me = ctx.id().index();
        let n = ctx.n_threads();
        self.slots
            .write(ctx, Index2(me, 0), |v| v.copy_from_slice(partial));
        ctx.barrier();
        if me == 0 {
            let mut acc = vec![0.0; partial.len()];
            for t in 0..n {
                self.slots.read(ctx, Index2(t, 0), |v| {
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a += b;
                    }
                });
                ctx.charge_flops(partial.len() as u64);
            }
            self.total
                .write(ctx, Index2(0, 0), |v| v.copy_from_slice(&acc));
        }
        ctx.barrier();
        self.total.read(ctx, Index2(0, 0), |v| v.clone())
    }
}

/// Owned index range of a block distribution (used by benchmarks that
/// track raw `Vec` state per thread rather than per element).
pub fn block_range(n_items: usize, n_threads: usize, thread: ThreadId) -> std::ops::Range<usize> {
    let per = n_items.div_ceil(n_threads);
    let lo = (thread.index() * per).min(n_items);
    let hi = (lo + per).min(n_items);
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcpp_rt::{Program, WorkModel};

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let x = a.next_f64();
        assert!((0.0..1.0).contains(&x));
        assert!(a.below(10) < 10);
    }

    #[test]
    fn reduction_sums_across_threads() {
        let n = 4;
        let red = Reduction::new(n);
        let result = pcpp_rt::sync::Mutex::new(Vec::new());
        Program::new(n)
            .with_work_model(WorkModel::unit())
            .run(|ctx| {
                let total = red.sum(ctx, (ctx.id().0 + 1) as f64);
                result.lock().push(total);
            });
        let results = result.into_inner();
        assert_eq!(results, vec![10.0; n]);
    }

    #[test]
    fn block_range_partitions() {
        let n = 10;
        let covered: usize = (0..3).map(|t| block_range(n, 3, ThreadId(t)).len()).sum();
        assert_eq!(covered, n);
        assert_eq!(block_range(10, 3, ThreadId(0)), 0..4);
        assert_eq!(block_range(10, 3, ThreadId(2)), 8..10);
    }
}
