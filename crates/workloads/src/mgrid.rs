//! **Mgrid** — a multigrid solver benchmark.
//!
//! A V-cycle multigrid for `width` independent 1-D Poisson problems
//! `−u″ = f` solved simultaneously (vector-valued unknowns, like the
//! line solves of a semicoarsened 3-D solver; the original NAS MG is
//! 3-D — the 1-D cycle preserves the performance-relevant structure: a
//! log-depth hierarchy of levels whose compute shrinks geometrically
//! while barrier and neighbour-exchange costs do not, which is why
//! Mgrid's speedup is so sensitive to communication parameters in
//! Figs. 4, 6, and 7).
//!
//! Every level stores `u`, `f`, and `r` as block-distributed collections
//! of `width`-wide points; smoothing and transfer operators read
//! neighbour points (remote at block boundaries) with two barriers per
//! sweep.  At coarse levels most threads own nothing and merely
//! synchronize.

use extrap_trace::ProgramTrace;
use pcpp_rt::{Collection, Distribution, Index2, Program, ThreadCtx};

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct MgridConfig {
    /// The finest level has `2^log2_size − 1` interior points (so that
    /// every coarse grid aligns with every second fine point).
    pub log2_size: u32,
    /// Number of V-cycles.
    pub cycles: usize,
    /// Pre/post smoothing sweeps per level.
    pub smooth: usize,
    /// Number of independent systems solved at once.
    pub width: usize,
}

impl Default for MgridConfig {
    fn default() -> MgridConfig {
        MgridConfig {
            log2_size: 8,
            cycles: 3,
            smooth: 2,
            width: 8,
        }
    }
}

/// Source term of system `s` on the finest grid.
fn f_term(i: usize, n: usize, s: usize) -> f64 {
    let x = (i + 1) as f64 / (n + 1) as f64;
    (std::f64::consts::PI * x).sin() * (1.0 + s as f64)
}

struct Level {
    n: usize,
    h2: f64,
    width: usize,
    u: Collection<Vec<f64>>,
    f: Collection<Vec<f64>>,
    r: Collection<Vec<f64>>,
}

impl Level {
    fn new(n: usize, h2: f64, width: usize, n_threads: usize) -> Level {
        let zero = move |_: Index2| vec![0.0; width];
        Level {
            n,
            h2,
            width,
            u: Collection::build(Distribution::block_1d(n, n_threads), zero),
            f: Collection::build(Distribution::block_1d(n, n_threads), zero),
            r: Collection::build(Distribution::block_1d(n, n_threads), zero),
        }
    }

    fn zeros(&self) -> Vec<f64> {
        vec![0.0; self.width]
    }

    /// Weighted-Jacobi sweep: `u ← (1−ω)u + ω(u[i−1] + u[i+1] + h²f)/2`,
    /// element-wise over the width.  Two barriers (gather, then update).
    fn smooth(&self, ctx: &mut ThreadCtx<'_>) {
        const OMEGA: f64 = 2.0 / 3.0;
        let mut staged: Vec<(usize, Vec<f64>)> = Vec::new();
        for idx in self.u.local_indices(ctx.id()) {
            let i = idx.0;
            let left = if i > 0 {
                self.u.read(ctx, Index2(i - 1, 0), |v| v.clone())
            } else {
                self.zeros()
            };
            let right = if i + 1 < self.n {
                self.u.read(ctx, Index2(i + 1, 0), |v| v.clone())
            } else {
                self.zeros()
            };
            let cur = self.u.read(ctx, idx, |v| v.clone());
            let fv = self.f.read(ctx, idx, |v| v.clone());
            let new: Vec<f64> = (0..self.width)
                .map(|s| {
                    let jac = 0.5 * (left[s] + right[s] + self.h2 * fv[s]);
                    (1.0 - OMEGA) * cur[s] + OMEGA * jac
                })
                .collect();
            staged.push((i, new));
            ctx.charge_flops(7 * self.width as u64);
        }
        ctx.barrier();
        for (i, v) in staged {
            self.u.write(ctx, Index2(i, 0), |u| *u = v);
        }
        ctx.barrier();
    }

    /// Residual `r = f − A u` (A = second difference / h²).
    fn residual(&self, ctx: &mut ThreadCtx<'_>) {
        let mut staged: Vec<(usize, Vec<f64>)> = Vec::new();
        for idx in self.u.local_indices(ctx.id()) {
            let i = idx.0;
            let left = if i > 0 {
                self.u.read(ctx, Index2(i - 1, 0), |v| v.clone())
            } else {
                self.zeros()
            };
            let right = if i + 1 < self.n {
                self.u.read(ctx, Index2(i + 1, 0), |v| v.clone())
            } else {
                self.zeros()
            };
            let cur = self.u.read(ctx, idx, |v| v.clone());
            let fv = self.f.read(ctx, idx, |v| v.clone());
            let res: Vec<f64> = (0..self.width)
                .map(|s| fv[s] - (2.0 * cur[s] - left[s] - right[s]) / self.h2)
                .collect();
            staged.push((i, res));
            ctx.charge_flops(6 * self.width as u64);
        }
        ctx.barrier();
        for (i, v) in staged {
            self.r.write(ctx, Index2(i, 0), |r| *r = v);
        }
        ctx.barrier();
    }
}

/// Runs the V-cycle multigrid; returns the trace and the fine-grid
/// solutions indexed `[s][i]`.
pub fn run(n_threads: usize, config: &MgridConfig) -> (ProgramTrace, Vec<Vec<f64>>) {
    let k = config.log2_size;
    assert!(k >= 3, "grid too small for a multigrid hierarchy");
    let width = config.width.max(1);
    let n0 = (1usize << k) - 1;
    let h0 = 1.0 / (n0 + 1) as f64;

    // Build the hierarchy down to 3 points; each coarse grid keeps every
    // second fine point, so spacing exactly doubles per level.
    let mut levels = Vec::new();
    let mut n = n0;
    let mut h2 = h0 * h0;
    while n >= 3 {
        levels.push(Level::new(n, h2, width, n_threads));
        n = (n - 1) / 2;
        h2 *= 4.0;
    }
    let depth = levels.len();
    let smooth = config.smooth;
    let cycles = config.cycles;

    let trace = Program::new(n_threads).run(|ctx| {
        // Load f on the finest level.
        for idx in levels[0].f.local_indices(ctx.id()) {
            let v: Vec<f64> = (0..width).map(|s| f_term(idx.0, levels[0].n, s)).collect();
            levels[0].f.write(ctx, idx, |f| *f = v);
        }
        ctx.barrier();

        for _cycle in 0..cycles {
            // Downstroke.
            for l in 0..depth - 1 {
                for _ in 0..smooth {
                    levels[l].smooth(ctx);
                }
                levels[l].residual(ctx);
                // Restrict r to the next level's f (full weighting); the
                // coarse point i sits under fine point 2i+1.
                let (fine, coarse) = (&levels[l], &levels[l + 1]);
                let mut staged: Vec<(usize, Vec<f64>)> = Vec::new();
                for idx in coarse.f.local_indices(ctx.id()) {
                    let i = idx.0;
                    let fi = 2 * i + 1;
                    let a = fine.r.read(ctx, Index2(fi - 1, 0), |v| v.clone());
                    let b = fine.r.read(ctx, Index2(fi, 0), |v| v.clone());
                    let c = fine.r.read(ctx, Index2(fi + 1, 0), |v| v.clone());
                    let restricted: Vec<f64> = (0..width)
                        .map(|s| 0.25 * (a[s] + 2.0 * b[s] + c[s]))
                        .collect();
                    staged.push((i, restricted));
                    ctx.charge_flops(4 * width as u64);
                }
                ctx.barrier();
                for (i, v) in staged {
                    coarse.f.write(ctx, Index2(i, 0), |f| *f = v);
                    coarse.u.write(ctx, Index2(i, 0), |u| u.fill(0.0));
                }
                ctx.barrier();
            }
            // Coarsest level: relax hard.
            for _ in 0..smooth * 6 {
                levels[depth - 1].smooth(ctx);
            }
            // Upstroke.
            for l in (0..depth - 1).rev() {
                // Prolongate the coarse correction and add it in.
                let (fine, coarse) = (&levels[l], &levels[l + 1]);
                let mut staged: Vec<(usize, Vec<f64>)> = Vec::new();
                for idx in fine.u.local_indices(ctx.id()) {
                    let i = idx.0;
                    let corr: Vec<f64> = if i % 2 == 1 {
                        coarse.u.read(ctx, Index2((i - 1) / 2, 0), |v| v.clone())
                    } else {
                        let left = if i / 2 >= 1 {
                            coarse.u.read(ctx, Index2(i / 2 - 1, 0), |v| v.clone())
                        } else {
                            coarse.zeros()
                        };
                        let right = if i / 2 < coarse.n {
                            coarse.u.read(ctx, Index2(i / 2, 0), |v| v.clone())
                        } else {
                            coarse.zeros()
                        };
                        (0..width).map(|s| 0.5 * (left[s] + right[s])).collect()
                    };
                    staged.push((i, corr));
                    ctx.charge_flops(2 * width as u64);
                }
                ctx.barrier();
                for (i, corr) in staged {
                    fine.u.write(ctx, Index2(i, 0), |u| {
                        for (a, b) in u.iter_mut().zip(&corr) {
                            *a += b;
                        }
                    });
                }
                ctx.barrier();
                for _ in 0..smooth {
                    levels[l].smooth(ctx);
                }
            }
        }
    });

    let solutions = (0..width)
        .map(|s| {
            (0..n0)
                .map(|i| levels[0].u.peek(Index2(i, 0), |v| v[s]))
                .collect()
        })
        .collect();
    (trace, solutions)
}

/// Max-norm residual of system `s` on the finest grid.
pub fn residual_norm(solution: &[f64], s: usize) -> f64 {
    let n = solution.len();
    let h2 = 1.0 / (((n + 1) * (n + 1)) as f64);
    let at = |i: isize| -> f64 {
        if i < 0 || i as usize >= n {
            0.0
        } else {
            solution[i as usize]
        }
    };
    (0..n)
        .map(|i| {
            let ii = i as isize;
            (f_term(i, n, s) - (2.0 * at(ii) - at(ii - 1) - at(ii + 1)) / h2).abs()
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_toward_the_solution_for_every_system() {
        let cfg = MgridConfig {
            log2_size: 6,
            cycles: 6,
            smooth: 2,
            width: 3,
        };
        let (_, us) = run(4, &cfg);
        let pi = std::f64::consts::PI;
        for (s, u) in us.iter().enumerate() {
            let n = u.len();
            for (i, &v) in u.iter().enumerate() {
                let x = (i + 1) as f64 / (n + 1) as f64;
                let exact = (pi * x).sin() * (1.0 + s as f64) / (pi * pi);
                assert!(
                    (v - exact).abs() < 0.01 * (1.0 + s as f64),
                    "s={s} i={i} v={v} exact={exact}"
                );
            }
        }
    }

    #[test]
    fn residual_shrinks_with_more_cycles() {
        let mk = |cycles| MgridConfig {
            log2_size: 6,
            cycles,
            smooth: 2,
            width: 2,
        };
        let (_, u1) = run(2, &mk(1));
        let (_, u4) = run(2, &mk(4));
        assert!(residual_norm(&u4[0], 0) < residual_norm(&u1[0], 0) * 0.5);
    }

    #[test]
    fn thread_count_does_not_change_the_numerics() {
        let cfg = MgridConfig {
            log2_size: 5,
            cycles: 3,
            smooth: 2,
            width: 2,
        };
        let (_, a) = run(1, &cfg);
        let (_, b) = run(8, &cfg);
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn barrier_heavy_profile() {
        let cfg = MgridConfig {
            log2_size: 6,
            cycles: 2,
            smooth: 2,
            width: 2,
        };
        let (trace, _) = run(4, &cfg);
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        // Many more barriers than Grid at comparable compute: the V-cycle
        // multiplies sweeps across levels.
        assert!(stats.barriers() > 100, "got {}", stats.barriers());
        assert!(stats.total_remote_accesses() > 0);
    }

    #[test]
    fn width_scales_bytes_not_barriers() {
        let mk = |width| {
            let (trace, _) = run(
                4,
                &MgridConfig {
                    log2_size: 5,
                    cycles: 1,
                    smooth: 1,
                    width,
                },
            );
            let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
            let st = extrap_trace::TraceStats::from_set(&ts);
            (st.barriers(), st.total_actual_bytes())
        };
        let (b1, bytes1) = mk(1);
        let (b8, bytes8) = mk(8);
        assert_eq!(b1, b8);
        assert!(bytes8 > bytes1 * 4);
    }
}
