//! **Poisson** — a fast (direct) Poisson solver.
//!
//! Solves `−∇²u = f` on a `P×P` interior by the matrix decomposition
//! method: a discrete sine transform along each locally-owned row, a
//! global **transpose** (the all-to-all communication that dominates this
//! benchmark), independent tridiagonal solves in the transformed basis
//! (Thomas algorithm, local), a transpose back, and the inverse
//! transform.  Rows are distributed `(Block, Whole)`.

use extrap_trace::ProgramTrace;
use pcpp_rt::{Collection, Dist1, Distribution, Index2, Program};

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct PoissonConfig {
    /// Interior grid size `P` (the solver is O(P³) through the naive
    /// DST, like the original pC++ code's transform step).
    pub size: usize,
}

impl Default for PoissonConfig {
    fn default() -> PoissonConfig {
        PoissonConfig { size: 24 }
    }
}

/// Source term.
fn f_term(i: usize, j: usize, p: usize) -> f64 {
    let x = (i + 1) as f64 / (p + 1) as f64;
    let y = (j + 1) as f64 / (p + 1) as f64;
    let pi = std::f64::consts::PI;
    (pi * x).sin() * (2.0 * pi * y).sin()
}

/// Naive DST-I of a vector (O(P²) flops — the benchmark's compute).
fn dst(v: &[f64]) -> Vec<f64> {
    let p = v.len();
    let pi = std::f64::consts::PI;
    (0..p)
        .map(|k| {
            (0..p)
                .map(|j| v[j] * ((pi * ((j + 1) * (k + 1)) as f64) / (p + 1) as f64).sin())
                .sum()
        })
        .collect()
}

/// Runs the solver; returns the trace and the `P×P` solution (row-major).
pub fn run(n_threads: usize, config: &PoissonConfig) -> (ProgramTrace, Vec<f64>) {
    let p = config.size;
    let h2 = 1.0 / (((p + 1) * (p + 1)) as f64);
    let pi = std::f64::consts::PI;
    let dist = || Distribution::new((p, p), (Dist1::Block, Dist1::Whole), n_threads);
    // Working matrices, all row-distributed.
    let g = Collection::<f64>::build(dist(), |idx| h2 * f_term(idx.0, idx.1, p));
    let gt = Collection::<f64>::build(dist(), |_| 0.0);
    let u = Collection::<f64>::build(dist(), |_| 0.0);

    let trace = Program::new(n_threads).run(|ctx| {
        let my_rows: Vec<usize> = (0..p)
            .filter(|&r| g.owner(Index2(r, 0)) == ctx.id())
            .collect();
        // Step 1: DST along each local row (transforms the column index).
        for &r in &my_rows {
            let row: Vec<f64> = (0..p).map(|j| g.read(ctx, Index2(r, j), |v| *v)).collect();
            let hat = dst(&row);
            ctx.charge_flops((3 * p * p) as u64);
            for (j, v) in hat.into_iter().enumerate() {
                g.write(ctx, Index2(r, j), |x| *x = v);
            }
        }
        ctx.barrier();
        // Step 2: transpose (all-to-all; gt[k][i] = g[i][k]).
        for &k in &my_rows {
            for i in 0..p {
                let v = g.read(ctx, Index2(i, k), |x| *x);
                gt.write(ctx, Index2(k, i), |x| *x = v);
            }
        }
        ctx.barrier();
        // Step 3: for each transformed mode k (a local row of gt), solve
        // the tridiagonal system (A + lambda_k I) x = rhs along i.
        for &k in &my_rows {
            let lambda = 4.0
                * ((pi * (k + 1) as f64) / (2.0 * (p + 1) as f64))
                    .sin()
                    .powi(2);
            let diag = 2.0 + lambda;
            let rhs: Vec<f64> = (0..p).map(|i| gt.read(ctx, Index2(k, i), |x| *x)).collect();
            // Thomas algorithm with constant coefficients (-1, diag, -1).
            let mut c_prime = vec![0.0; p];
            let mut d_prime = vec![0.0; p];
            c_prime[0] = -1.0 / diag;
            d_prime[0] = rhs[0] / diag;
            for i in 1..p {
                let m = diag + c_prime[i - 1];
                c_prime[i] = -1.0 / m;
                d_prime[i] = (rhs[i] + d_prime[i - 1]) / m;
            }
            let mut x = vec![0.0; p];
            x[p - 1] = d_prime[p - 1];
            for i in (0..p - 1).rev() {
                x[i] = d_prime[i] - c_prime[i] * x[i + 1];
            }
            ctx.charge_flops((8 * p) as u64);
            for (i, v) in x.into_iter().enumerate() {
                gt.write(ctx, Index2(k, i), |q| *q = v);
            }
        }
        ctx.barrier();
        // Step 4: transpose back into u.
        for &i in &my_rows {
            for k in 0..p {
                let v = gt.read(ctx, Index2(k, i), |x| *x);
                u.write(ctx, Index2(i, k), |x| *x = v);
            }
        }
        ctx.barrier();
        // Step 5: inverse DST along each local row.
        for &r in &my_rows {
            let row: Vec<f64> = (0..p).map(|j| u.read(ctx, Index2(r, j), |v| *v)).collect();
            let back = dst(&row);
            ctx.charge_flops((3 * p * p) as u64);
            let scale = 2.0 / (p + 1) as f64;
            for (j, v) in back.into_iter().enumerate() {
                u.write(ctx, Index2(r, j), |x| *x = v * scale);
            }
        }
        ctx.barrier();
    });

    let mut out = vec![0.0; p * p];
    for i in 0..p {
        for j in 0..p {
            out[i * p + j] = u.peek(Index2(i, j), |v| *v);
        }
    }
    (trace, out)
}

/// Max-norm residual of the 5-point Laplacian against `f` (h²-scaled
/// formulation, so a direct solve is exact to rounding).
pub fn residual_norm(config: &PoissonConfig, u: &[f64]) -> f64 {
    let p = config.size;
    let h2 = 1.0 / (((p + 1) * (p + 1)) as f64);
    let at = |i: isize, j: isize| -> f64 {
        if i < 0 || j < 0 || i as usize >= p || j as usize >= p {
            0.0
        } else {
            u[i as usize * p + j as usize]
        }
    };
    let mut worst: f64 = 0.0;
    for i in 0..p {
        for j in 0..p {
            let (ii, jj) = (i as isize, j as isize);
            let lap = 4.0 * at(ii, jj)
                - at(ii - 1, jj)
                - at(ii + 1, jj)
                - at(ii, jj - 1)
                - at(ii, jj + 1);
            worst = worst.max((lap - h2 * f_term(i, j, p)).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_solver_is_exact() {
        let cfg = PoissonConfig { size: 12 };
        for threads in [1, 2, 4] {
            let (_, u) = run(threads, &cfg);
            let r = residual_norm(&cfg, &u);
            assert!(r < 1e-10, "threads {threads}: residual {r}");
        }
    }

    #[test]
    fn matches_analytic_solution_scale() {
        // For f = sin(pi x) sin(2 pi y), the continuous solution of
        // −∇²u = f is u = f / (pi² + 4 pi²); the discrete solution
        // approximates it.
        let cfg = PoissonConfig { size: 16 };
        let (_, u) = run(2, &cfg);
        let p = cfg.size;
        let pi = std::f64::consts::PI;
        let (i, j) = (p / 4, p / 8);
        let x = (i + 1) as f64 / (p + 1) as f64;
        let y = (j + 1) as f64 / (p + 1) as f64;
        let expect = (pi * x).sin() * (2.0 * pi * y).sin() / (5.0 * pi * pi);
        let got = u[i * p + j];
        assert!(
            (got - expect).abs() < 0.05 * expect.abs().max(0.01),
            "got {got} expect {expect}"
        );
    }

    #[test]
    fn transpose_dominates_communication() {
        let cfg = PoissonConfig { size: 16 };
        let (trace, _) = run(4, &cfg);
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        // Two transposes of a 16x16 matrix over 4 threads: roughly
        // 2 * 16*16 * 3/4 remote reads/writes.
        assert!(stats.total_remote_accesses() > 300);
        assert_eq!(stats.barriers(), 5);
    }

    #[test]
    fn thread_counts_exceeding_rows_still_work() {
        let cfg = PoissonConfig { size: 8 };
        let (_, u) = run(16, &cfg);
        assert!(residual_norm(&cfg, &u) < 1e-10);
    }
}
