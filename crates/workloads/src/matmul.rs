//! **Matmul** — the §4.2 validation program.
//!
//! The paper's naive matrix multiply: `A·B` with `Bᵀ` given, both
//! distributed identically by one of nine two-dimensional distribution
//! combinations (`Block`/`Cyclic`/`Whole` per dimension).  For each row
//! `k` of `Bᵀ`:
//!
//! 1. **broadcast** the row into a temporary `T` — each thread fetches
//!    the *segment* of the row covering its own columns as one bulk
//!    remote element transfer;
//! 2. **pointwise multiply** with the local part of `A`, accumulating a
//!    partial sum per local row;
//! 3. a **right-to-left global summation** chained across the thread
//!    grid's columns (one bulk partial-vector transfer per hop) places
//!    column `k` of the result.
//!
//! The distribution choice changes only the communication pattern, never
//! the arithmetic — which is why the experiment can rank distributions.

use extrap_trace::ProgramTrace;
use pcpp_rt::{Collection, Dist1, Distribution, Index2, Program};

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct MatmulConfig {
    /// Matrix dimension `N`.
    pub n: usize,
    /// Distribution attributes for both `A` and `Bᵀ` (and the result).
    pub dist: (Dist1, Dist1),
}

impl Default for MatmulConfig {
    fn default() -> MatmulConfig {
        MatmulConfig {
            n: 16,
            dist: (Dist1::Block, Dist1::Block),
        }
    }
}

/// The nine distribution combinations of Fig. 9, in the paper's order.
pub fn nine_distributions() -> [(Dist1, Dist1); 9] {
    use Dist1::*;
    [
        (Block, Block),
        (Block, Cyclic),
        (Block, Whole),
        (Cyclic, Block),
        (Cyclic, Cyclic),
        (Cyclic, Whole),
        (Whole, Block),
        (Whole, Cyclic),
        (Whole, Whole),
    ]
}

/// Deterministic matrix entries.
fn a_entry(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 13) as f64 - 6.0
}
fn b_entry(i: usize, j: usize) -> f64 {
    ((i * 7 + j * 23) % 11) as f64 - 5.0
}

/// Runs Matmul; returns the trace and the row-major product `A·B`.
pub fn run(n_threads: usize, config: &MatmulConfig) -> (ProgramTrace, Vec<f64>) {
    let n = config.n;
    let dist = Distribution::new((n, n), config.dist, n_threads);
    let tgrid = dist.tgrid;
    let (tg0, tg1) = tgrid;

    // Thread-grid coordinates of every row / column index.
    let row_group: Vec<usize> = (0..n)
        .map(|i| dist.owner(Index2(i, 0)).index() / tg1)
        .collect();
    let col_group: Vec<usize> = (0..n)
        .map(|j| dist.owner(Index2(0, j)).index() % tg1)
        .collect();
    // Members of each group, ascending.
    let rows_of: Vec<Vec<usize>> = (0..tg0)
        .map(|g| (0..n).filter(|&i| row_group[i] == g).collect())
        .collect();
    let cols_of: Vec<Vec<usize>> = (0..tg1)
        .map(|g| (0..n).filter(|&j| col_group[j] == g).collect())
        .collect();

    let a = Collection::<f64>::build(dist, |i| a_entry(i.0, i.1));
    let c = Collection::<f64>::build(dist, |_| 0.0);
    // Bt row segments: element (k, g) holds bt[k][j] = b[j][k] for the
    // columns j of thread-grid column g, owned by thread (rg(k), g).
    let cols_for_seg = cols_of.clone();
    let btseg = Collection::<Vec<f64>>::build(
        Distribution::with_tgrid((n, tg1), (config.dist.0, Dist1::Block), tgrid, n_threads),
        |idx| {
            let (k, g) = (idx.0, idx.1);
            cols_for_seg[g].iter().map(|&j| b_entry(j, k)).collect()
        },
    );
    // Reduction chain: element (tr, g) carries the right-to-left running
    // sums for the rows of row-group tr, owned by thread (tr, g).
    let rows_per_group = rows_of.iter().map(|r| r.len()).max().unwrap_or(0);
    let chain = Collection::<Vec<f64>>::build(
        Distribution::with_tgrid((tg0, tg1), (Dist1::Block, Dist1::Block), tgrid, n_threads),
        |_| vec![0.0; rows_per_group],
    );

    let trace = Program::new(n_threads).run(|ctx| {
        let me = ctx.id().index();
        let in_grid = me < tg0 * tg1;
        let (my_tr, my_tc) = (me / tg1, me % tg1);
        let my_rows: &[usize] = if in_grid { &rows_of[my_tr] } else { &[] };
        let my_cols: &[usize] = if in_grid { &cols_of[my_tc] } else { &[] };

        #[allow(clippy::needless_range_loop)] // k is the algorithm's step index
        for k in 0..n {
            // Phase 1: broadcast — fetch this thread's segment of row k.
            let t_seg: Vec<f64> = if in_grid && !my_cols.is_empty() {
                btseg.read(ctx, Index2(k, my_tc), |v| v.clone())
            } else {
                Vec::new()
            };
            ctx.barrier();
            // Phase 2: local pointwise multiply + per-row partial sums.
            let mut partial = vec![0.0; rows_per_group];
            if in_grid {
                for (ri, &i) in my_rows.iter().enumerate() {
                    let mut acc = 0.0;
                    for (ci, &j) in my_cols.iter().enumerate() {
                        acc += a.read(ctx, Index2(i, j), |v| *v) * t_seg[ci];
                    }
                    ctx.charge_flops(2 * my_cols.len() as u64);
                    partial[ri] = acc;
                }
            }
            // Phase 3: right-to-left chain across thread-grid columns.
            for g in (0..tg1).rev() {
                if in_grid && my_tc == g {
                    let inflow = if g + 1 < tg1 {
                        chain.read(ctx, Index2(my_tr, g + 1), |v| v.clone())
                    } else {
                        vec![0.0; rows_per_group]
                    };
                    chain.write(ctx, Index2(my_tr, g), |sums| {
                        for ri in 0..rows_per_group {
                            sums[ri] = partial[ri] + inflow[ri];
                        }
                    });
                    ctx.charge_flops(rows_per_group as u64);
                }
                ctx.barrier();
            }
            // Phase 4: the owners of column k store the row totals.
            if in_grid && col_group[k] == my_tc {
                let totals = chain.read(ctx, Index2(my_tr, 0), |v| v.clone());
                for (ri, &i) in my_rows.iter().enumerate() {
                    c.write(ctx, Index2(i, k), |v| *v = totals[ri]);
                }
            }
            ctx.barrier();
        }
    });

    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            out[i * n + j] = c.peek(Index2(i, j), |v| *v);
        }
    }
    (trace, out)
}

/// Direct reference product.
pub fn reference(n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += a_entry(i, j) * b_entry(j, k);
            }
            out[i * n + k] = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_distribution_multiplies_correctly() {
        let n = 8;
        let expected = reference(n);
        for dist in nine_distributions() {
            for threads in [1, 4] {
                let cfg = MatmulConfig { n, dist };
                let (_, got) = run(threads, &cfg);
                assert_eq!(got, expected, "dist {dist:?} threads {threads}");
            }
        }
    }

    #[test]
    fn non_square_thread_counts_work() {
        let n = 8;
        let expected = reference(n);
        for dist in nine_distributions() {
            let cfg = MatmulConfig { n, dist };
            let (_, got) = run(8, &cfg);
            assert_eq!(got, expected, "dist {dist:?}");
        }
    }

    #[test]
    fn broadcast_is_bulk_segments() {
        let n = 16;
        let (trace, _) = run(
            4,
            &MatmulConfig {
                n,
                dist: (Dist1::Block, Dist1::Block),
            },
        );
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        // Per k each thread does at most 1 broadcast fetch + 1 chain read
        // + 1 total read: far fewer than one event per matrix cell.
        let per_thread_events = stats.thread(extrap_time::ThreadId(0)).remote_reads as usize;
        assert!(
            per_thread_events <= 3 * n,
            "expected bulk transfers, got {per_thread_events}"
        );
        // Segments carry 8 doubles = 64 bytes.
        assert!(stats.total_actual_bytes() >= (n as u64) * 64);
    }

    #[test]
    fn distribution_changes_communication_not_results() {
        let n = 8;
        let mk = |dist| {
            let (trace, _) = run(4, &MatmulConfig { n, dist });
            let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
            extrap_trace::TraceStats::from_set(&ts).total_remote_accesses()
        };
        let bb = mk((Dist1::Block, Dist1::Block));
        let ww = mk((Dist1::Whole, Dist1::Whole));
        // (W,W) piles everything on thread 0: no remote element traffic,
        // all the time on one thread; distributed versions communicate.
        assert!(bb > 0);
        assert_eq!(ww, 0);
    }

    #[test]
    fn whole_whole_serializes_compute() {
        let n = 8;
        let (trace, _) = run(
            4,
            &MatmulConfig {
                n,
                dist: (Dist1::Whole, Dist1::Whole),
            },
        );
        let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
        let stats = extrap_trace::TraceStats::from_set(&ts);
        assert!(stats.thread(extrap_time::ThreadId(0)).compute.as_ns() > 0);
        for t in 1..4 {
            assert_eq!(stats.thread(extrap_time::ThreadId(t)).compute.as_ns(), 0);
        }
    }
}
