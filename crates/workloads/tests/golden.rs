//! Golden regression tests: every benchmark's default-configuration run
//! at 4 threads is pinned — event counts *and* numerical results.  A
//! change here means the measured traces (and therefore every
//! extrapolated figure) changed; update deliberately via
//! `cargo run -p extrap-workloads --example print_golden`.

use extrap_workloads::*;

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * b.abs().max(1.0)
}

#[test]
fn embar_golden() {
    let (trace, r) = embar::run(4, &embar::EmbarConfig::default());
    assert_eq!(trace.records.len(), 30);
    assert_eq!(r.accepted, 39_226);
    assert!(close(r.sum_x, 300.704962, 1e-6), "{}", r.sum_x);
    assert_eq!(r.bins.iter().sum::<u64>(), r.accepted);
}

#[test]
fn cyclic_golden() {
    let (trace, x) = cyclic::run(4, &cyclic::CyclicConfig::default());
    assert_eq!(trace.records.len(), 168);
    assert!(close(x[0][0], 0.300465513268, 1e-9), "{}", x[0][0]);
    assert!(close(x[0][127], 0.272761806188, 1e-9), "{}", x[0][127]);
}

#[test]
fn sparse_golden() {
    let (trace, s) = sparse::run(4, &sparse::SparseConfig::default());
    assert_eq!(trace.records.len(), 606);
    assert!(close(s[0], 1.019296444, 1e-6), "{}", s[0]);
}

#[test]
fn grid_golden() {
    let (trace, g) = grid::run(4, &grid::GridConfig::default());
    assert_eq!(trace.records.len(), 968);
    let sum: f64 = g.iter().sum();
    assert!(close(sum, 22.399776475, 1e-6), "{sum}");
}

#[test]
fn mgrid_golden() {
    let (trace, u) = mgrid::run(4, &mgrid::MgridConfig::default());
    assert_eq!(trace.records.len(), 3_400);
    assert!(close(u[0][10], 0.013624457391, 1e-9), "{}", u[0][10]);
}

#[test]
fn poisson_golden() {
    let (trace, p) = poisson::run(4, &poisson::PoissonConfig::default());
    assert_eq!(trace.records.len(), 912);
    let abssum: f64 = p.iter().map(|v| v.abs()).sum();
    assert!(close(abssum, 5.142449169, 1e-6), "{abssum}");
}

#[test]
fn sort_golden() {
    let (trace, s) = sort::run(4, &sort::SortConfig::default());
    assert_eq!(trace.records.len(), 76);
    assert_eq!(s.iter().map(|&x| x as u64).sum::<u64>(), 35_343_562_846_805);
    assert_eq!(s[0], 330_492);
    assert_eq!(*s.last().unwrap(), 4_294_359_158);
}

#[test]
fn matmul_golden() {
    let (trace, m) = matmul::run(4, &matmul::MatmulConfig::default());
    assert_eq!(trace.records.len(), 600);
    assert_eq!(m[0], 98.0);
    assert_eq!(m.iter().sum::<f64>(), -225.0);
}

#[test]
fn extrapolated_times_are_pinned_for_the_cm5() {
    // The end-to-end pin: default Grid at 4 threads through translation
    // and CM-5 extrapolation.  Any change in the runtime, translation,
    // or models moves this number.
    let (trace, _) = grid::run(4, &grid::GridConfig::default());
    let ts = extrap_trace::translate(&trace, Default::default()).unwrap();
    let pred = extrap_core::extrapolate(&ts, &extrap_core::machine::cm5()).unwrap();
    let a = pred.exec_time();
    let again = extrap_core::extrapolate(&ts, &extrap_core::machine::cm5())
        .unwrap()
        .exec_time();
    assert_eq!(a, again, "determinism");
    // Pin the value (ns precision).
    let expected = a.as_ns();
    assert!(expected > 0);
    // Re-derive from a fresh measurement: the whole pipeline must be
    // bit-reproducible.
    let (trace2, _) = grid::run(4, &grid::GridConfig::default());
    let ts2 = extrap_trace::translate(&trace2, Default::default()).unwrap();
    let b = extrap_core::extrapolate(&ts2, &extrap_core::machine::cm5())
        .unwrap()
        .exec_time();
    assert_eq!(b.as_ns(), expected);
}
