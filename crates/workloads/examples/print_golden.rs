//! Prints the golden regression values asserted by `tests/golden.rs`.
//! Re-run after an intentional behaviour change and update the test.

use extrap_workloads::*;
fn main() {
    let (t, r) = embar::run(4, &embar::EmbarConfig::default());
    println!(
        "embar: events={} accepted={} sumx={:.6}",
        t.records.len(),
        r.accepted,
        r.sum_x
    );
    let (t, x) = cyclic::run(4, &cyclic::CyclicConfig::default());
    println!(
        "cyclic: events={} x0={:.12} xmid={:.12}",
        t.records.len(),
        x[0][0],
        x[0][127]
    );
    let (t, s) = sparse::run(4, &sparse::SparseConfig::default());
    println!("sparse: events={} s0={:.9}", t.records.len(), s[0]);
    let (t, g) = grid::run(4, &grid::GridConfig::default());
    println!(
        "grid: events={} sum={:.9}",
        t.records.len(),
        g.iter().sum::<f64>()
    );
    let (t, u) = mgrid::run(4, &mgrid::MgridConfig::default());
    println!("mgrid: events={} u0={:.12}", t.records.len(), u[0][10]);
    let (t, p) = poisson::run(4, &poisson::PoissonConfig::default());
    println!(
        "poisson: events={} abssum={:.9}",
        t.records.len(),
        p.iter().map(|v| v.abs()).sum::<f64>()
    );
    let (t, s) = sort::run(4, &sort::SortConfig::default());
    println!(
        "sort: events={} sum={} first={} last={}",
        t.records.len(),
        s.iter().map(|&x| x as u64).sum::<u64>(),
        s[0],
        s[s.len() - 1]
    );
    let (t, m) = matmul::run(4, &matmul::MatmulConfig::default());
    println!(
        "matmul: events={} c00={} sum={}",
        t.records.len(),
        m[0],
        m.iter().sum::<f64>()
    );
}
