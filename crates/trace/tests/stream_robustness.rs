//! Robustness of the chunked streaming readers: arbitrary prefixes and
//! mutations of valid traces must never panic, and the streams must
//! agree with the slurp decoders (`decode_program_raw` /
//! `decode_set_raw`) on both the decoded value and the error message.
//!
//! Driven by a deterministic SplitMix64 case generator instead of
//! `proptest` (crates.io is unreachable in the build environment).

use extrap_time::DurationNs;
use extrap_trace::stream::{ProgramStream, SetStream, SliceSource, StreamArena};
use extrap_trace::{format, translate, PhaseProgram, ProgramTrace, TraceSet};

const CASES: u64 = 256;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn for_all(seed: u64, check: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        check(&mut rng);
    }
}

fn sample_program() -> ProgramTrace {
    let mut p = PhaseProgram::new(3);
    p.push_uniform_phase(DurationNs(100));
    p.push_uniform_phase(DurationNs(250));
    p.record()
}

fn sample_set() -> TraceSet {
    translate(&sample_program(), Default::default()).unwrap()
}

/// Streams `data` as a program trace with deliberately tiny windows and
/// chunks so the refill/compaction paths are exercised on every case.
fn stream_program(data: &[u8], window: usize, chunk: usize) -> Result<ProgramTrace, String> {
    ProgramStream::with_options(SliceSource(data), StreamArena::new(), window, chunk)
        .and_then(|mut s| s.read_to_end())
        .map_err(|e| e.to_string())
}

fn stream_set(data: &[u8], window: usize, chunk: usize) -> Result<TraceSet, String> {
    SetStream::with_options(SliceSource(data), StreamArena::new(), window, chunk)
        .and_then(|mut s| s.read_to_end())
        .map_err(|e| e.to_string())
}

/// The slurp decoder is the behavioral reference: value equal on `Ok`,
/// message equal on `Err`.
fn assert_program_parity(data: &[u8], window: usize, chunk: usize, what: &str) {
    let slurp = format::decode_program_raw(data).map_err(|e| e.to_string());
    let stream = stream_program(data, window, chunk);
    assert_eq!(slurp, stream, "{what} (window {window}, chunk {chunk})");
}

fn assert_set_parity(data: &[u8], window: usize, chunk: usize, what: &str) {
    let slurp = format::decode_set_raw(data).map_err(|e| e.to_string());
    let stream = stream_set(data, window, chunk);
    assert_eq!(slurp, stream, "{what} (window {window}, chunk {chunk})");
}

#[test]
fn random_prefixes_never_panic_and_match_slurp() {
    let program = format::encode_program(&sample_program());
    let set = format::encode_set(&sample_set());
    for_all(0x57_0E44, |rng| {
        let window = rng.range(1, 64) as usize;
        let chunk = rng.range(1, 16) as usize;
        let pcut = rng.range(0, program.len() as u64 + 1) as usize;
        assert_program_parity(&program[..pcut], window, chunk, "program prefix");
        let scut = rng.range(0, set.len() as u64 + 1) as usize;
        assert_set_parity(&set[..scut], window, chunk, "set prefix");
    });
}

#[test]
fn random_mutations_never_panic_and_match_slurp() {
    let program = format::encode_program(&sample_program());
    let set = format::encode_set(&sample_set());
    for_all(0x57_0E45, |rng| {
        let window = rng.range(1, 64) as usize;
        let chunk = rng.range(1, 16) as usize;
        let mut p = program.clone();
        for _ in 0..rng.range(1, 5) {
            let pos = rng.range(0, p.len() as u64) as usize;
            p[pos] = rng.next() as u8;
        }
        assert_program_parity(&p, window, chunk, "program mutation");
        let mut s = set.clone();
        for _ in 0..rng.range(1, 5) {
            let pos = rng.range(0, s.len() as u64) as usize;
            s[pos] = rng.next() as u8;
        }
        assert_set_parity(&s, window, chunk, "set mutation");
    });
}

#[test]
fn random_garbage_never_panics() {
    for_all(0x57_0E46, |rng| {
        let len = rng.range(0, 512) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let window = rng.range(1, 64) as usize;
        let chunk = rng.range(1, 16) as usize;
        // Must return (usually Err), never panic.
        let _ = stream_program(&data, window, chunk);
        let _ = stream_set(&data, window, chunk);
    });
}

#[test]
fn truncation_and_extension_at_every_boundary() {
    // Exhaustive over every truncation point (not just sampled ones) at
    // one awkward window size, plus appended garbage.
    let program = format::encode_program(&sample_program());
    for cut in 0..=program.len() {
        assert_program_parity(&program[..cut], 5, 3, "program cut");
    }
    let set = format::encode_set(&sample_set());
    for cut in 0..=set.len() {
        assert_set_parity(&set[..cut], 5, 3, "set cut");
    }
    for extra in 1..4 {
        let mut p = program.clone();
        p.extend(vec![0xAAu8; extra]);
        assert_program_parity(&p, 5, 3, "program extension");
        let mut s = set.clone();
        s.extend(vec![0xAAu8; extra]);
        assert_set_parity(&s, 5, 3, "set extension");
    }
}
