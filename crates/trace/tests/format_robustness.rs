//! Robustness of the binary trace codec: arbitrary and corrupted inputs
//! must produce errors, never panics or bogus successes.

use extrap_time::DurationNs;
use extrap_trace::{format, PhaseProgram};
use proptest::prelude::*;

fn sample_bytes() -> Vec<u8> {
    let mut p = PhaseProgram::new(3);
    p.push_uniform_phase(DurationNs(100));
    p.push_uniform_phase(DurationNs(250));
    format::encode_program(&p.record())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Must return (usually Err), never panic.
        let _ = format::decode_program(&data);
        let _ = format::decode_set(&data);
    }

    #[test]
    fn single_byte_corruption_never_panics(
        pos_frac in 0.0f64..1.0,
        value in any::<u8>(),
    ) {
        let mut bytes = sample_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = value;
        // If it still decodes, it must be a structurally valid trace.
        if let Ok(pt) = format::decode_program(&bytes) {
            prop_assert!(pt.validate().is_ok());
        }
    }

    #[test]
    fn truncation_never_panics(cut_frac in 0.0f64..1.0) {
        let bytes = sample_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(format::decode_program(&bytes[..cut]).is_err());
    }

    #[test]
    fn round_trip_of_random_phase_programs(
        n in 1usize..6,
        phases in proptest::collection::vec(1u64..100_000, 1..5),
    ) {
        let mut p = PhaseProgram::new(n);
        for c in &phases {
            p.push_uniform_phase(DurationNs(*c));
        }
        let pt = p.record();
        let bytes = format::encode_program(&pt);
        let back = format::decode_program(&bytes).unwrap();
        prop_assert_eq!(pt, back);
    }
}
