//! Robustness of the binary trace codec: arbitrary and corrupted inputs
//! must produce errors, never panics or bogus successes.
//!
//! Driven by a deterministic SplitMix64 case generator instead of
//! `proptest` (crates.io is unreachable in the build environment).

use extrap_time::DurationNs;
use extrap_trace::{format, PhaseProgram};

const CASES: u64 = 256;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

fn for_all(seed: u64, check: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng(seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        check(&mut rng);
    }
}

fn sample_bytes() -> Vec<u8> {
    let mut p = PhaseProgram::new(3);
    p.push_uniform_phase(DurationNs(100));
    p.push_uniform_phase(DurationNs(250));
    format::encode_program(&p.record())
}

#[test]
fn random_bytes_never_panic() {
    for_all(0x2A4D, |rng| {
        let len = rng.range(0, 512) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // Must return (usually Err), never panic.
        let _ = format::decode_program(&data);
        let _ = format::decode_set(&data);
    });
}

#[test]
fn single_byte_corruption_never_panics() {
    let bytes = sample_bytes();
    for pos in 0..bytes.len() {
        for value in [0u8, 1, 7, 0x7F, 0x80, 0xFF] {
            let mut corrupted = bytes.clone();
            corrupted[pos] = value;
            // If it still decodes, it must be a structurally valid trace.
            if let Ok(pt) = format::decode_program(&corrupted) {
                assert!(pt.validate().is_ok());
            }
        }
    }
}

#[test]
fn truncation_never_panics() {
    let bytes = sample_bytes();
    for cut in 0..bytes.len() {
        assert!(format::decode_program(&bytes[..cut]).is_err(), "cut {cut}");
    }
}

#[test]
fn round_trip_of_random_phase_programs() {
    for_all(0x2070, |rng| {
        let n = rng.range(1, 6) as usize;
        let mut p = PhaseProgram::new(n);
        for _ in 0..rng.range(1, 5) {
            p.push_uniform_phase(DurationNs(rng.range(1, 100_000)));
        }
        let pt = p.record();
        let bytes = format::encode_program(&pt);
        let back = format::decode_program(&bytes).unwrap();
        assert_eq!(pt, back);
    });
}
