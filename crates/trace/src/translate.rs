//! The trace translation algorithm of §3.2.
//!
//! Input: the single, globally time-stamped event stream of an *n*-thread
//! program measured on **one** processor under non-preemptive scheduling.
//! Output: *n* per-thread traces whose timestamps reflect the *ideal*
//! concurrent execution on *n* processors, under the paper's idealizing
//! assumptions: instant remote accesses, instant barrier synchronization
//! (threads exit a barrier the moment the last thread enters it), and
//! unperturbed thread computation.
//!
//! The rules, verbatim from the paper:
//!
//! * **Non-synchronization events** keep their per-thread inter-event
//!   deltas: if `e1`, `e2` are consecutive events of one thread with
//!   measured times `t1`, `t2`, and `e1` was adjusted to `t1'`, then `e2`
//!   is adjusted to `t2 - t1 + t1'`.
//! * **Barrier exits** are snapped to the adjusted barrier-entry timestamp
//!   of the *last* thread to enter that barrier.
//!
//! The algorithm also optionally compensates for measurement intrusion:
//! a fixed per-event recording overhead and a per-reschedule thread-switch
//! overhead are subtracted from the measured deltas ("the trace
//! translation algorithm is easily modified to handle the overhead for
//! recording the events ... and switching the threads").

use crate::error::TraceError;
use crate::event::{EventKind, ProgramTrace, ThreadTrace, TraceRecord, TraceSet};
use crate::stream::{ChunkSource, ProgramStream, SpillSink};
use extrap_time::{BarrierId, DurationNs, ThreadId, TimeNs};
use std::collections::VecDeque;
use std::mem::size_of;

/// Intrusion-compensation knobs for translation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TranslateOptions {
    /// Cost of recording one event in the measured run; subtracted from
    /// every per-thread inter-event delta (saturating at zero).
    pub event_overhead: DurationNs,
    /// Cost of a thread switch in the measured run; additionally
    /// subtracted from the delta following each rescheduling point (thread
    /// begin and barrier exit).
    pub switch_overhead: DurationNs,
}

/// Receives translated records from the [`EpochTranslator`].
///
/// Records arrive in per-thread time order (each thread's records are
/// emitted in its own stream order), but threads interleave in epoch
/// resolution order, **not** global time order.  Sinks that need a
/// global view must merge per thread; sinks that fold per thread (a
/// [`TraceSet`] builder, the incremental compiler, a spill file) consume
/// them directly.
pub trait TranslateSink {
    /// Accepts one translated record for `thread`.  Fallible so sinks
    /// that spill to disk can surface I/O errors through translation.
    fn emit(&mut self, thread: usize, rec: TraceRecord) -> Result<(), TraceError>;
}

impl<F: FnMut(usize, TraceRecord) -> Result<(), TraceError>> TranslateSink for F {
    fn emit(&mut self, thread: usize, rec: TraceRecord) -> Result<(), TraceError> {
        self(thread, rec)
    }
}

/// Counters reported by a completed streaming translation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TranslateStats {
    /// Total input records consumed.
    pub records: u64,
    /// High-water mark of the translator's transient state (held
    /// records, barrier-id and release windows, per-thread cursors) —
    /// the O(threads + live-epoch) bound, excluding whatever the sink
    /// itself retains.
    pub peak_resident_bytes: usize,
}

/// Per-thread translation state inside the streaming machine.
struct ThreadXlate {
    orig_prev: TimeNs,
    adj_prev: TimeNs,
    started: bool,
    /// True when the previous translated event was a rescheduling point
    /// (thread begin or barrier exit).
    after_reschedule: bool,
    /// Barriers this thread has entered so far.
    entered: usize,
    /// The next record is this thread's barrier exit: snap it to the
    /// release time of epoch `entered - 1`.
    pending_snap: bool,
    /// Barrier entered but not yet exited (protocol tracking).
    pending_barrier: Option<BarrierId>,
    /// Records received while this thread is ahead of the last resolved
    /// epoch; replayed when the epoch's release time becomes final.
    held: VecDeque<TraceRecord>,
}

impl ThreadXlate {
    fn new() -> ThreadXlate {
        ThreadXlate {
            orig_prev: TimeNs::ZERO,
            adj_prev: TimeNs::ZERO,
            started: false,
            after_reschedule: false,
            entered: 0,
            pending_snap: false,
            pending_barrier: None,
            held: VecDeque::new(),
        }
    }
}

/// The streaming §3.2 translation machine: consumes the global
/// 1-processor record stream in order and emits idealized per-thread
/// records to a [`TranslateSink`] as soon as their timestamps are final.
///
/// A record's translated time is final once the release time of every
/// barrier epoch before it is known, i.e. once every thread has entered
/// that barrier.  Threads that run ahead of the slowest thread have
/// their records held back (that is the only buffering); when the
/// laggard's entry resolves an epoch, the held records drain.  Resident
/// state is therefore O(threads + live-epoch): the per-thread cursors
/// plus the records and barrier bookkeeping of epochs still in flight.
///
/// The whole-trace [`translate`] is an adapter over this machine, so the
/// two paths are byte-identical by construction.  The machine performs
/// the same validity checks incrementally (monotone clock, thread
/// range, barrier protocol, barrier-sequence agreement) with identical
/// messages; only the *attribution* of a [`TraceError::BarrierMismatch`]
/// can differ (the streaming check compares against the first thread to
/// reach an epoch, the whole-trace prepass against thread 0), which is
/// why the adapter keeps the historical prepass.
pub struct EpochTranslator {
    options: TranslateOptions,
    threads: Vec<ThreadXlate>,
    /// Barrier ids per epoch, established by the first thread to enter;
    /// pruned below the slowest thread's epoch.
    barrier_ids: VecDeque<BarrierId>,
    ids_base: usize,
    /// Accumulating release times (max adjusted entry) per epoch;
    /// pruned once snapped by every thread.
    release: VecDeque<TimeNs>,
    release_base: usize,
    /// Epochs whose release time is final (every thread has entered).
    resolved: usize,
    /// Threads with `entered > resolved`; when all are, an epoch resolves.
    ahead: usize,
    /// Held records across all threads (for O(1) residency accounting).
    held_records: usize,
    next_record: usize,
    last_time: TimeNs,
    peak_resident: usize,
}

impl EpochTranslator {
    /// A fresh machine for an `n_threads`-thread program stream.
    pub fn new(n_threads: usize, options: TranslateOptions) -> EpochTranslator {
        let mut m = EpochTranslator {
            options,
            threads: (0..n_threads).map(|_| ThreadXlate::new()).collect(),
            barrier_ids: VecDeque::new(),
            ids_base: 0,
            release: VecDeque::new(),
            release_base: 0,
            resolved: 0,
            ahead: 0,
            held_records: 0,
            next_record: 0,
            last_time: TimeNs::ZERO,
            peak_resident: 0,
        };
        m.note_peak();
        m
    }

    /// Feeds one record of the global stream, emitting every translated
    /// record it finalizes.
    pub fn push(
        &mut self,
        rec: &TraceRecord,
        sink: &mut dyn TranslateSink,
    ) -> Result<(), TraceError> {
        let record = self.next_record;
        self.next_record += 1;
        let t = rec.thread.index();
        if t >= self.threads.len() {
            return Err(TraceError::BadThread {
                record,
                thread: rec.thread,
                n_threads: self.threads.len(),
            });
        }
        if rec.time < self.last_time {
            return Err(TraceError::TimeRegression { record });
        }
        self.last_time = rec.time;
        if self.threads[t].entered > self.resolved {
            // Thread is ahead of the slowest epoch: its release time is
            // not final yet, so hold the record.
            self.threads[t].held.push_back(*rec);
            self.held_records += 1;
            self.note_peak();
            return Ok(());
        }
        self.step(t, *rec, sink)?;
        self.drain(sink)?;
        self.note_peak();
        Ok(())
    }

    /// Flushes end-of-stream checks.  Call exactly once after the last
    /// [`push`](EpochTranslator::push); emits nothing (all translatable
    /// records were emitted eagerly) but rejects streams whose threads
    /// disagree on the barrier count or leave a barrier unexited.
    pub fn finish(&mut self) -> Result<(), TraceError> {
        let n = self.threads.len();
        if n == 0 {
            return Ok(());
        }
        // Held records never made it through `step`; fold them into the
        // barrier census and protocol check before judging the stream.
        let mut total_entered = vec![0usize; n];
        let mut protocol_err: Vec<Option<TraceError>> = (0..n).map(|_| None).collect();
        for (t, st) in self.threads.iter().enumerate() {
            total_entered[t] = st.entered;
            let thread = ThreadId::from_index(t);
            let mut pending = st.pending_barrier;
            for rec in &st.held {
                match rec.kind {
                    EventKind::BarrierEnter { barrier } => {
                        total_entered[t] += 1;
                        if protocol_err[t].is_none() {
                            if let Some(p) = pending {
                                protocol_err[t] = Some(TraceError::BarrierProtocol {
                                    thread,
                                    detail: format!("entered {barrier} while still inside {p}"),
                                });
                            }
                            pending = Some(barrier);
                        }
                    }
                    EventKind::BarrierExit { barrier } if protocol_err[t].is_none() => {
                        match pending.take() {
                            Some(p) if p == barrier => {}
                            Some(p) => {
                                protocol_err[t] = Some(TraceError::BarrierProtocol {
                                    thread,
                                    detail: format!("exited {barrier} while inside {p}"),
                                });
                            }
                            None => {
                                protocol_err[t] = Some(TraceError::BarrierProtocol {
                                    thread,
                                    detail: format!("exited {barrier} without entering it"),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
            if protocol_err[t].is_none() {
                if let Some(p) = pending {
                    protocol_err[t] = Some(TraceError::BarrierProtocol {
                        thread,
                        detail: format!("never exited {p}"),
                    });
                }
            }
        }
        for (t, &count) in total_entered.iter().enumerate().skip(1) {
            if count != total_entered[0] {
                return Err(TraceError::BarrierMismatch {
                    thread: ThreadId::from_index(t),
                });
            }
        }
        for err in &mut protocol_err {
            if let Some(e) = err.take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Input records consumed so far.
    pub fn records_seen(&self) -> u64 {
        self.next_record as u64
    }

    /// Current transient state, by size-of arithmetic (no allocator
    /// hooks; `forbid(unsafe_code)` holds).  Counts live records and
    /// window entries, not capacities, so it is O(1) to maintain.
    pub fn resident_bytes(&self) -> usize {
        size_of::<Self>()
            + self.threads.len() * size_of::<ThreadXlate>()
            + self.held_records * size_of::<TraceRecord>()
            + self.barrier_ids.len() * size_of::<BarrierId>()
            + self.release.len() * size_of::<TimeNs>()
    }

    /// High-water mark of [`resident_bytes`](EpochTranslator::resident_bytes).
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }

    fn note_peak(&mut self) {
        let r = self.resident_bytes();
        if r > self.peak_resident {
            self.peak_resident = r;
        }
    }

    /// Processes one record of a thread that is *not* ahead (its epoch's
    /// release time, if needed, is final).
    fn step(
        &mut self,
        t: usize,
        rec: TraceRecord,
        sink: &mut dyn TranslateSink,
    ) -> Result<(), TraceError> {
        if self.threads[t].pending_snap {
            // This is the record after a barrier entry: the barrier
            // exit, snapped to the release time (the last thread's
            // adjusted entry) — mirroring whole-trace phase 2, which
            // snaps unconditionally.
            let epoch = self.threads[t].entered - 1;
            let release = self.release[epoch - self.release_base];
            self.protocol_update(t, &rec)?;
            let st = &mut self.threads[t];
            st.pending_snap = false;
            st.orig_prev = rec.time;
            st.adj_prev = release;
            st.started = true;
            st.after_reschedule = true;
            return sink.emit(
                t,
                TraceRecord {
                    time: release,
                    thread: rec.thread,
                    kind: rec.kind,
                },
            );
        }
        self.protocol_update(t, &rec)?;
        if let EventKind::BarrierEnter { barrier } = rec.kind {
            let epoch = self.threads[t].entered;
            // Sequence agreement, against the id established by the
            // first thread to reach this epoch.
            let idx = epoch - self.ids_base;
            match self.barrier_ids.get(idx) {
                Some(&established) if established != barrier => {
                    return Err(TraceError::BarrierMismatch {
                        thread: ThreadId::from_index(t),
                    });
                }
                None => {
                    debug_assert_eq!(idx, self.barrier_ids.len());
                    self.barrier_ids.push_back(barrier);
                }
                Some(_) => {}
            }
            self.adjust_emit(t, &rec, sink)?;
            let entry = self.threads[t].adj_prev;
            let ridx = epoch - self.release_base;
            if ridx == self.release.len() {
                self.release.push_back(entry);
            } else {
                let r = &mut self.release[ridx];
                *r = (*r).max(entry);
            }
            let st = &mut self.threads[t];
            st.entered += 1;
            st.pending_snap = true;
            if st.entered == self.resolved + 1 {
                self.ahead += 1;
            }
            Ok(())
        } else {
            self.adjust_emit(t, &rec, sink)
        }
    }

    /// Resolves epochs while every thread is past them, replaying held
    /// records (which may resolve further epochs; the loop, not
    /// recursion, handles the cascade).
    fn drain(&mut self, sink: &mut dyn TranslateSink) -> Result<(), TraceError> {
        while !self.threads.is_empty() && self.ahead == self.threads.len() {
            self.resolved += 1;
            self.ahead = self
                .threads
                .iter()
                .filter(|st| st.entered > self.resolved)
                .count();
            for t in 0..self.threads.len() {
                while self.threads[t].entered <= self.resolved {
                    let Some(rec) = self.threads[t].held.pop_front() else {
                        break;
                    };
                    self.held_records -= 1;
                    self.step(t, rec, sink)?;
                }
            }
            self.prune();
        }
        Ok(())
    }

    /// Drops barrier-id and release entries no thread can read again.
    fn prune(&mut self) {
        let mut ids_needed = usize::MAX;
        let mut rel_needed = usize::MAX;
        for st in &self.threads {
            ids_needed = ids_needed.min(st.entered);
            rel_needed = rel_needed.min(st.entered - usize::from(st.pending_snap));
        }
        while self.ids_base < ids_needed && !self.barrier_ids.is_empty() {
            self.barrier_ids.pop_front();
            self.ids_base += 1;
        }
        while self.release_base < rel_needed && !self.release.is_empty() {
            self.release.pop_front();
            self.release_base += 1;
        }
    }

    /// The per-thread delta adjustment (§3.2 rule one), emitted directly.
    fn adjust_emit(
        &mut self,
        t: usize,
        rec: &TraceRecord,
        sink: &mut dyn TranslateSink,
    ) -> Result<(), TraceError> {
        let st = &mut self.threads[t];
        let adj_time = if !st.started {
            st.started = true;
            TimeNs::ZERO
        } else {
            let mut delta = rec.time.since(st.orig_prev);
            delta = delta.saturating_sub(self.options.event_overhead);
            if st.after_reschedule {
                delta = delta.saturating_sub(self.options.switch_overhead);
            }
            st.adj_prev + delta
        };
        st.orig_prev = rec.time;
        st.adj_prev = adj_time;
        st.after_reschedule = matches!(
            rec.kind,
            EventKind::ThreadBegin | EventKind::BarrierExit { .. }
        );
        sink.emit(
            t,
            TraceRecord {
                time: adj_time,
                thread: rec.thread,
                kind: rec.kind,
            },
        )
    }

    /// Incremental entry/exit alternation check, with the same messages
    /// as the whole-trace prepass.
    fn protocol_update(&mut self, t: usize, rec: &TraceRecord) -> Result<(), TraceError> {
        let st = &mut self.threads[t];
        let thread = ThreadId::from_index(t);
        match rec.kind {
            EventKind::BarrierEnter { barrier } => {
                if let Some(p) = st.pending_barrier {
                    return Err(TraceError::BarrierProtocol {
                        thread,
                        detail: format!("entered {barrier} while still inside {p}"),
                    });
                }
                st.pending_barrier = Some(barrier);
            }
            EventKind::BarrierExit { barrier } => match st.pending_barrier.take() {
                Some(p) if p == barrier => {}
                Some(p) => {
                    return Err(TraceError::BarrierProtocol {
                        thread,
                        detail: format!("exited {barrier} while inside {p}"),
                    })
                }
                None => {
                    return Err(TraceError::BarrierProtocol {
                        thread,
                        detail: format!("exited {barrier} without entering it"),
                    })
                }
            },
            _ => {}
        }
        Ok(())
    }
}

/// Translates a 1-processor program trace into idealized per-thread traces.
///
/// Every thread's first event is re-based to time zero (all threads start
/// simultaneously on the target machine).
///
/// A thin adapter over the streaming [`EpochTranslator`] — the whole-trace
/// and [`translate_stream`] paths are byte-identical by construction.  The
/// historical prepass (barrier-sequence and protocol checks against thread
/// 0) is kept so error *attribution* on invalid traces stays exactly what
/// it always was; on traces that pass it, the machine's own incremental
/// checks can never fire.
///
/// # Errors
/// Returns an error if the trace is malformed, if threads disagree on the
/// barrier sequence, or if barrier entry/exit events do not alternate
/// properly.
pub fn translate(trace: &ProgramTrace, options: TranslateOptions) -> Result<TraceSet, TraceError> {
    trace.validate()?;
    precheck_barriers(trace)?;

    let mut out: Vec<Vec<TraceRecord>> = (0..trace.n_threads).map(|_| Vec::new()).collect();
    let mut machine = EpochTranslator::new(trace.n_threads, options);
    {
        let mut sink = |t: usize, rec: TraceRecord| {
            out[t].push(rec);
            Ok(())
        };
        for rec in &trace.records {
            machine.push(rec, &mut sink)?;
        }
    }
    machine.finish()?;

    let set = TraceSet {
        threads: out
            .into_iter()
            .enumerate()
            .map(|(i, records)| ThreadTrace {
                thread: ThreadId::from_index(i),
                records,
            })
            .collect(),
    };
    set.validate()?;
    Ok(set)
}

/// Streaming translation: consumes [`ProgramStream`] chunks directly,
/// emitting translated records to `sink` as their timestamps finalize.
/// Resident state is the machine's O(threads + live-epoch) bound plus the
/// stream's fixed decode window; the input trace is never materialized.
///
/// Performs the same validity checks as [`translate`] incrementally (see
/// [`EpochTranslator`] for the one attribution caveat on invalid input);
/// on valid input the emitted records are byte-identical to the
/// whole-trace path.
pub fn translate_stream<S: ChunkSource>(
    stream: &mut ProgramStream<S>,
    options: TranslateOptions,
    sink: &mut dyn TranslateSink,
) -> Result<TranslateStats, TraceError> {
    let mut machine = EpochTranslator::new(stream.n_threads(), options);
    while let Some(chunk) = stream.next_chunk()? {
        for rec in chunk {
            machine.push(rec, sink)?;
        }
    }
    machine.finish()?;
    Ok(TranslateStats {
        records: machine.records_seen(),
        peak_resident_bytes: machine.peak_resident_bytes(),
    })
}

/// Out-of-core streaming translation to a [`TraceSet`]: per-thread output
/// runs go through a budget-capped [`SpillSink`] (in-memory until
/// `mem_budget` bytes of translated records are resident, spilled to a
/// tempfile-backed `SpillDir` beyond that) and are merged back
/// thread-by-thread at the end.  The result — validated like
/// [`translate`]'s — is byte-identical to the whole-trace path.
pub fn translate_stream_to_set<S: ChunkSource>(
    stream: &mut ProgramStream<S>,
    options: TranslateOptions,
    mem_budget: usize,
) -> Result<(TraceSet, TranslateStats), TraceError> {
    let mut sink = SpillSink::new(stream.n_threads(), mem_budget);
    let stats = translate_stream(stream, options, &mut sink)?;
    let set = sink.into_set()?;
    set.validate()?;
    Ok((set, stats))
}

/// One-pass prepass computing every thread's barrier sequence and first
/// protocol violation, then judging them in the historical order (thread
/// by thread: sequence against thread 0, then protocol) so whole-trace
/// error attribution is unchanged from the pre-streaming implementation.
fn precheck_barriers(trace: &ProgramTrace) -> Result<(), TraceError> {
    let n = trace.n_threads;
    if n == 0 {
        return Ok(());
    }
    let mut seqs: Vec<Vec<BarrierId>> = vec![Vec::new(); n];
    let mut pending: Vec<Option<BarrierId>> = vec![None; n];
    let mut first_err: Vec<Option<TraceError>> = (0..n).map(|_| None).collect();
    for rec in &trace.records {
        let t = rec.thread.index();
        let thread = ThreadId::from_index(t);
        match rec.kind {
            EventKind::BarrierEnter { barrier } => {
                seqs[t].push(barrier);
                if first_err[t].is_none() {
                    if let Some(p) = pending[t] {
                        first_err[t] = Some(TraceError::BarrierProtocol {
                            thread,
                            detail: format!("entered {barrier} while still inside {p}"),
                        });
                    }
                    pending[t] = Some(barrier);
                }
            }
            EventKind::BarrierExit { barrier } if first_err[t].is_none() => {
                match pending[t].take() {
                    Some(p) if p == barrier => {}
                    Some(p) => {
                        first_err[t] = Some(TraceError::BarrierProtocol {
                            thread,
                            detail: format!("exited {barrier} while inside {p}"),
                        });
                    }
                    None => {
                        first_err[t] = Some(TraceError::BarrierProtocol {
                            thread,
                            detail: format!("exited {barrier} without entering it"),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    for t in 0..n {
        if seqs[t] != seqs[0] {
            return Err(TraceError::BarrierMismatch {
                thread: ThreadId::from_index(t),
            });
        }
        if let Some(e) = first_err[t].take() {
            return Err(e);
        }
        if let Some(p) = pending[t] {
            return Err(TraceError::BarrierProtocol {
                thread: ThreadId::from_index(t),
                detail: format!("never exited {p}"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PhaseProgram, PhaseWork};

    fn uniform(n: usize, phases: &[u64]) -> ProgramTrace {
        let mut p = PhaseProgram::new(n);
        for &c in phases {
            p.push_uniform_phase(DurationNs(c));
        }
        p.record()
    }

    #[test]
    fn uniform_phases_collapse_to_parallel_time() {
        // 4 threads, two phases of 1000ns each: on 1 processor the run
        // takes 8000ns of compute; translated, the makespan is 2000ns.
        let pt = uniform(4, &[1_000, 1_000]);
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        assert_eq!(ts.makespan(), TimeNs(2_000));
        for t in &ts.threads {
            assert_eq!(t.end_time(), TimeNs(2_000));
        }
    }

    #[test]
    fn skewed_phase_waits_for_slowest() {
        // Thread 1 computes 3x longer; the barrier releases at the slowest
        // thread's entry.
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(100),
                accesses: vec![],
            },
            PhaseWork {
                compute: DurationNs(300),
                accesses: vec![],
            },
        ]);
        p.push_uniform_phase(DurationNs(50));
        let ts = translate(&p.record(), TranslateOptions::default()).unwrap();
        // Barrier 0 releases at 300; both threads then compute 50 more.
        assert_eq!(ts.makespan(), TimeNs(350));
        let exits: Vec<_> = ts.threads[0]
            .records
            .iter()
            .filter(|r| matches!(r.kind, EventKind::BarrierExit { .. }))
            .map(|r| r.time)
            .collect();
        assert_eq!(exits[0], TimeNs(300));
        assert_eq!(exits[1], TimeNs(350));
    }

    #[test]
    fn deltas_are_preserved_for_non_sync_events() {
        let pt = uniform(3, &[500, 700, 900]);
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        // Every thread's compute deltas (exit -> next enter) must equal the
        // original phase lengths.
        for t in &ts.threads {
            let mut compute = Vec::new();
            let mut last_resume = TimeNs::ZERO;
            for r in &t.records {
                match r.kind {
                    EventKind::BarrierEnter { .. } => {
                        compute.push(r.time.since(last_resume).as_ns())
                    }
                    EventKind::BarrierExit { .. } | EventKind::ThreadBegin => last_resume = r.time,
                    _ => {}
                }
            }
            assert_eq!(compute, vec![500, 700, 900]);
        }
    }

    #[test]
    fn event_overhead_is_subtracted() {
        // One phase of 1000ns; with 100ns/event overhead the compute delta
        // between begin and barrier-enter shrinks to 900ns.
        let pt = uniform(1, &[1_000]);
        let ts = translate(
            &pt,
            TranslateOptions {
                event_overhead: DurationNs(100),
                switch_overhead: DurationNs::ZERO,
            },
        )
        .unwrap();
        let enter = ts.threads[0]
            .records
            .iter()
            .find(|r| matches!(r.kind, EventKind::BarrierEnter { .. }))
            .unwrap();
        assert_eq!(enter.time, TimeNs(900));
    }

    #[test]
    fn switch_overhead_applies_after_reschedule() {
        let pt = uniform(1, &[1_000, 1_000]);
        let ts = translate(
            &pt,
            TranslateOptions {
                event_overhead: DurationNs::ZERO,
                switch_overhead: DurationNs(200),
            },
        )
        .unwrap();
        // Phase 0 delta (after ThreadBegin, a reschedule point): 800.
        // Barrier exits instantly; phase 1 delta (after exit): 800.
        assert_eq!(ts.makespan(), TimeNs(1_600));
    }

    #[test]
    fn single_thread_translation_is_identity_shift() {
        let pt = uniform(1, &[123, 456]);
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        assert_eq!(ts.makespan(), TimeNs(579));
    }

    #[test]
    fn remote_events_keep_relative_position() {
        use extrap_time::{ElementId, ThreadId};
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(400),
                accesses: vec![crate::builder::PhaseAccess {
                    after: DurationNs(150),
                    owner: ThreadId(1),
                    element: ElementId(3),
                    declared_bytes: 64,
                    actual_bytes: 8,
                    write: false,
                }],
            },
            PhaseWork {
                compute: DurationNs(400),
                accesses: vec![],
            },
        ]);
        let ts = translate(&p.record(), TranslateOptions::default()).unwrap();
        let remote = ts.threads[0]
            .records
            .iter()
            .find(|r| r.kind.is_remote())
            .unwrap();
        assert_eq!(remote.time, TimeNs(150));
    }

    #[test]
    fn mismatched_barrier_sequences_rejected() {
        use crate::builder::ProgramTraceBuilder;
        let mut b = ProgramTraceBuilder::new(2);
        for (t, barrier) in [(0u32, 0u32), (1, 1)] {
            b.emit(ThreadId(t), EventKind::ThreadBegin);
            b.emit(
                ThreadId(t),
                EventKind::BarrierEnter {
                    barrier: BarrierId(barrier),
                },
            );
            b.emit(
                ThreadId(t),
                EventKind::BarrierExit {
                    barrier: BarrierId(barrier),
                },
            );
            b.emit(ThreadId(t), EventKind::ThreadEnd);
        }
        let pt = b.finish();
        assert!(matches!(
            translate(&pt, TranslateOptions::default()),
            Err(TraceError::BarrierMismatch { .. })
        ));
    }

    #[test]
    fn unmatched_barrier_exit_rejected() {
        use crate::builder::ProgramTraceBuilder;
        let mut b = ProgramTraceBuilder::new(1);
        b.emit(ThreadId(0), EventKind::ThreadBegin);
        b.emit(
            ThreadId(0),
            EventKind::BarrierExit {
                barrier: BarrierId(0),
            },
        );
        let pt = b.finish();
        assert!(matches!(
            translate(&pt, TranslateOptions::default()),
            Err(TraceError::BarrierProtocol { .. })
        ));
    }

    #[test]
    fn no_phase_program_translates() {
        let pt = uniform(3, &[]);
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        assert_eq!(ts.n_threads(), 3);
        assert_eq!(ts.makespan(), TimeNs::ZERO);
    }

    fn sample_remote_program() -> ProgramTrace {
        use crate::builder::PhaseAccess;
        use extrap_time::ElementId;
        let access = |after: u64, owner: usize, element: u32, write: bool| PhaseAccess {
            after: DurationNs(after),
            owner: ThreadId::from_index(owner),
            element: ElementId(element),
            declared_bytes: 64,
            actual_bytes: 16,
            write,
        };
        let mut p = PhaseProgram::new(4);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(120),
                accesses: vec![access(30, 2, 7, false), access(60, 3, 3, true)],
            },
            PhaseWork {
                compute: DurationNs(340),
                accesses: vec![],
            },
            PhaseWork {
                compute: DurationNs(90),
                accesses: vec![access(45, 0, 11, true)],
            },
            PhaseWork {
                compute: DurationNs(200),
                accesses: vec![],
            },
        ]);
        p.push_uniform_phase(DurationNs(75));
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(10),
                accesses: vec![],
            },
            PhaseWork {
                compute: DurationNs(500),
                accesses: vec![access(100, 0, 1, false)],
            },
            PhaseWork {
                compute: DurationNs(40),
                accesses: vec![],
            },
            PhaseWork {
                compute: DurationNs(40),
                accesses: vec![],
            },
        ]);
        p.record()
    }

    #[test]
    fn streaming_translate_matches_whole_trace() {
        use crate::stream::{ProgramStream, SliceSource};
        let pt = sample_remote_program();
        let opts = TranslateOptions {
            event_overhead: DurationNs(3),
            switch_overhead: DurationNs(5),
        };
        let expected = translate(&pt, opts).unwrap();
        let bytes = crate::format::encode_program(&pt);
        for budget in [0usize, 64, usize::MAX] {
            let mut stream = ProgramStream::new(SliceSource(&bytes)).unwrap();
            let (set, stats) = translate_stream_to_set(&mut stream, opts, budget).unwrap();
            assert_eq!(set, expected, "budget {budget}");
            assert_eq!(stats.records, pt.records.len() as u64);
            assert!(stats.peak_resident_bytes > 0);
        }
    }

    #[test]
    fn streaming_write_set_file_is_byte_identical() {
        use crate::stream::{ProgramStream, SliceSource, SpillSink};
        let pt = sample_remote_program();
        let opts = TranslateOptions::default();
        let expected = crate::format::encode_set(&translate(&pt, opts).unwrap());
        let bytes = crate::format::encode_program(&pt);
        let dir = std::env::temp_dir().join(format!("extrap-xlate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.xtps");
        // Budget 0 forces every batch through the spill files.
        let mut stream = ProgramStream::new(SliceSource(&bytes)).unwrap();
        let mut sink = SpillSink::new(stream.n_threads(), 0);
        translate_stream(&mut stream, opts, &mut sink).unwrap();
        assert!(sink.spill_count() > 0);
        sink.write_set_file(&path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_translate_rejects_what_whole_trace_rejects() {
        use crate::builder::ProgramTraceBuilder;
        use crate::stream::{ProgramStream, SliceSource};
        let mut b = ProgramTraceBuilder::new(2);
        b.emit(ThreadId(0), EventKind::ThreadBegin);
        b.emit(ThreadId(1), EventKind::ThreadBegin);
        b.advance(DurationNs(10));
        b.emit(
            ThreadId(0),
            EventKind::BarrierEnter {
                barrier: BarrierId(0),
            },
        );
        b.advance(DurationNs(20));
        b.emit(
            ThreadId(1),
            EventKind::BarrierEnter {
                barrier: BarrierId(9),
            },
        );
        let pt = b.finish();
        let bytes = crate::format::encode_program(&pt);
        let mut stream = ProgramStream::new(SliceSource(&bytes)).unwrap();
        let err = translate_stream_to_set(&mut stream, TranslateOptions::default(), usize::MAX)
            .unwrap_err();
        assert!(matches!(err, TraceError::BarrierMismatch { .. }));
        assert!(translate(&pt, TranslateOptions::default()).is_err());
    }
}
