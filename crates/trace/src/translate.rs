//! The trace translation algorithm of §3.2.
//!
//! Input: the single, globally time-stamped event stream of an *n*-thread
//! program measured on **one** processor under non-preemptive scheduling.
//! Output: *n* per-thread traces whose timestamps reflect the *ideal*
//! concurrent execution on *n* processors, under the paper's idealizing
//! assumptions: instant remote accesses, instant barrier synchronization
//! (threads exit a barrier the moment the last thread enters it), and
//! unperturbed thread computation.
//!
//! The rules, verbatim from the paper:
//!
//! * **Non-synchronization events** keep their per-thread inter-event
//!   deltas: if `e1`, `e2` are consecutive events of one thread with
//!   measured times `t1`, `t2`, and `e1` was adjusted to `t1'`, then `e2`
//!   is adjusted to `t2 - t1 + t1'`.
//! * **Barrier exits** are snapped to the adjusted barrier-entry timestamp
//!   of the *last* thread to enter that barrier.
//!
//! The algorithm also optionally compensates for measurement intrusion:
//! a fixed per-event recording overhead and a per-reschedule thread-switch
//! overhead are subtracted from the measured deltas ("the trace
//! translation algorithm is easily modified to handle the overhead for
//! recording the events ... and switching the threads").

use crate::error::TraceError;
use crate::event::{EventKind, ProgramTrace, ThreadTrace, TraceRecord, TraceSet};
use extrap_time::{BarrierId, DurationNs, ThreadId, TimeNs};

/// Intrusion-compensation knobs for translation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TranslateOptions {
    /// Cost of recording one event in the measured run; subtracted from
    /// every per-thread inter-event delta (saturating at zero).
    pub event_overhead: DurationNs,
    /// Cost of a thread switch in the measured run; additionally
    /// subtracted from the delta following each rescheduling point (thread
    /// begin and barrier exit).
    pub switch_overhead: DurationNs,
}

/// Translates a 1-processor program trace into idealized per-thread traces.
///
/// Every thread's first event is re-based to time zero (all threads start
/// simultaneously on the target machine).
///
/// # Errors
/// Returns an error if the trace is malformed, if threads disagree on the
/// barrier sequence, or if barrier entry/exit events do not alternate
/// properly.
pub fn translate(trace: &ProgramTrace, options: TranslateOptions) -> Result<TraceSet, TraceError> {
    trace.validate()?;
    let per_thread = trace.split_by_thread();

    // Verify the data-parallel determinism assumption up front: identical
    // barrier sequences, and exit-follows-enter per thread.
    let barrier_seq = barrier_sequence_of(&per_thread[0]);
    for (i, stream) in per_thread.iter().enumerate() {
        let seq = barrier_sequence_of(stream);
        if seq != barrier_seq {
            return Err(TraceError::BarrierMismatch {
                thread: ThreadId::from_index(i),
            });
        }
        check_barrier_protocol(ThreadId::from_index(i), stream)?;
    }

    // Per-thread translation state.
    struct State {
        cursor: usize,
        orig_prev: TimeNs,
        adj_prev: TimeNs,
        started: bool,
        /// True when the previous translated event was a rescheduling
        /// point (thread begin or barrier exit).
        after_reschedule: bool,
        out: Vec<TraceRecord>,
    }
    let mut states: Vec<State> = per_thread
        .iter()
        .map(|_| State {
            cursor: 0,
            orig_prev: TimeNs::ZERO,
            adj_prev: TimeNs::ZERO,
            started: false,
            after_reschedule: false,
            out: Vec::new(),
        })
        .collect();

    // Delta-adjusts one event for a thread.
    let adjust = |st: &mut State, rec: &TraceRecord| {
        let adj_time = if !st.started {
            st.started = true;
            TimeNs::ZERO
        } else {
            let mut delta = rec.time.since(st.orig_prev);
            delta = delta.saturating_sub(options.event_overhead);
            if st.after_reschedule {
                delta = delta.saturating_sub(options.switch_overhead);
            }
            st.adj_prev + delta
        };
        st.orig_prev = rec.time;
        st.adj_prev = adj_time;
        st.after_reschedule = matches!(
            rec.kind,
            EventKind::ThreadBegin | EventKind::BarrierExit { .. }
        );
        st.out.push(TraceRecord {
            time: adj_time,
            thread: rec.thread,
            kind: rec.kind,
        });
    };

    // Process barrier by barrier (every thread passes the same sequence).
    for &barrier in &barrier_seq {
        // Phase 1: delta-adjust all events up to and including this
        // barrier's entry, collecting the adjusted entry times.
        let mut release = TimeNs::ZERO;
        for st_idx in 0..states.len() {
            let st = &mut states[st_idx];
            let stream = &per_thread[st_idx];
            loop {
                let rec = &stream[st.cursor];
                st.cursor += 1;
                adjust(st, rec);
                if let EventKind::BarrierEnter { barrier: b } = rec.kind {
                    debug_assert_eq!(b, barrier);
                    release = release.max(st.adj_prev);
                    break;
                }
            }
        }
        // Phase 2: every thread's next event is the exit of this barrier;
        // snap it to the release time (the last thread's entry time).
        for st_idx in 0..states.len() {
            let st = &mut states[st_idx];
            let stream = &per_thread[st_idx];
            let rec = &stream[st.cursor];
            st.cursor += 1;
            debug_assert!(matches!(
                rec.kind,
                EventKind::BarrierExit { barrier: b } if b == barrier
            ));
            st.orig_prev = rec.time;
            st.adj_prev = release;
            st.started = true;
            st.after_reschedule = true;
            st.out.push(TraceRecord {
                time: release,
                thread: rec.thread,
                kind: rec.kind,
            });
        }
    }

    // Tail: events after the last barrier (at minimum ThreadEnd).
    for st_idx in 0..states.len() {
        let st = &mut states[st_idx];
        let stream = &per_thread[st_idx];
        while st.cursor < stream.len() {
            let rec = &stream[st.cursor];
            st.cursor += 1;
            adjust(st, rec);
        }
    }

    let set = TraceSet {
        threads: states
            .into_iter()
            .enumerate()
            .map(|(i, st)| ThreadTrace {
                thread: ThreadId::from_index(i),
                records: st.out,
            })
            .collect(),
    };
    set.validate()?;
    Ok(set)
}

fn barrier_sequence_of(stream: &[TraceRecord]) -> Vec<BarrierId> {
    stream
        .iter()
        .filter_map(|r| match r.kind {
            EventKind::BarrierEnter { barrier } => Some(barrier),
            _ => None,
        })
        .collect()
}

/// Checks that, per thread, every `BarrierEnter(b)` is immediately followed
/// (in that thread's stream) by `BarrierExit(b)` before any other barrier
/// event, and exits never appear without a matching entry.
fn check_barrier_protocol(thread: ThreadId, stream: &[TraceRecord]) -> Result<(), TraceError> {
    let mut pending: Option<BarrierId> = None;
    for r in stream {
        match r.kind {
            EventKind::BarrierEnter { barrier } => {
                if let Some(p) = pending {
                    return Err(TraceError::BarrierProtocol {
                        thread,
                        detail: format!("entered {barrier} while still inside {p}"),
                    });
                }
                pending = Some(barrier);
            }
            EventKind::BarrierExit { barrier } => match pending.take() {
                Some(p) if p == barrier => {}
                Some(p) => {
                    return Err(TraceError::BarrierProtocol {
                        thread,
                        detail: format!("exited {barrier} while inside {p}"),
                    })
                }
                None => {
                    return Err(TraceError::BarrierProtocol {
                        thread,
                        detail: format!("exited {barrier} without entering it"),
                    })
                }
            },
            _ => {}
        }
    }
    if let Some(p) = pending {
        return Err(TraceError::BarrierProtocol {
            thread,
            detail: format!("never exited {p}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PhaseProgram, PhaseWork};

    fn uniform(n: usize, phases: &[u64]) -> ProgramTrace {
        let mut p = PhaseProgram::new(n);
        for &c in phases {
            p.push_uniform_phase(DurationNs(c));
        }
        p.record()
    }

    #[test]
    fn uniform_phases_collapse_to_parallel_time() {
        // 4 threads, two phases of 1000ns each: on 1 processor the run
        // takes 8000ns of compute; translated, the makespan is 2000ns.
        let pt = uniform(4, &[1_000, 1_000]);
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        assert_eq!(ts.makespan(), TimeNs(2_000));
        for t in &ts.threads {
            assert_eq!(t.end_time(), TimeNs(2_000));
        }
    }

    #[test]
    fn skewed_phase_waits_for_slowest() {
        // Thread 1 computes 3x longer; the barrier releases at the slowest
        // thread's entry.
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(100),
                accesses: vec![],
            },
            PhaseWork {
                compute: DurationNs(300),
                accesses: vec![],
            },
        ]);
        p.push_uniform_phase(DurationNs(50));
        let ts = translate(&p.record(), TranslateOptions::default()).unwrap();
        // Barrier 0 releases at 300; both threads then compute 50 more.
        assert_eq!(ts.makespan(), TimeNs(350));
        let exits: Vec<_> = ts.threads[0]
            .records
            .iter()
            .filter(|r| matches!(r.kind, EventKind::BarrierExit { .. }))
            .map(|r| r.time)
            .collect();
        assert_eq!(exits[0], TimeNs(300));
        assert_eq!(exits[1], TimeNs(350));
    }

    #[test]
    fn deltas_are_preserved_for_non_sync_events() {
        let pt = uniform(3, &[500, 700, 900]);
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        // Every thread's compute deltas (exit -> next enter) must equal the
        // original phase lengths.
        for t in &ts.threads {
            let mut compute = Vec::new();
            let mut last_resume = TimeNs::ZERO;
            for r in &t.records {
                match r.kind {
                    EventKind::BarrierEnter { .. } => {
                        compute.push(r.time.since(last_resume).as_ns())
                    }
                    EventKind::BarrierExit { .. } | EventKind::ThreadBegin => last_resume = r.time,
                    _ => {}
                }
            }
            assert_eq!(compute, vec![500, 700, 900]);
        }
    }

    #[test]
    fn event_overhead_is_subtracted() {
        // One phase of 1000ns; with 100ns/event overhead the compute delta
        // between begin and barrier-enter shrinks to 900ns.
        let pt = uniform(1, &[1_000]);
        let ts = translate(
            &pt,
            TranslateOptions {
                event_overhead: DurationNs(100),
                switch_overhead: DurationNs::ZERO,
            },
        )
        .unwrap();
        let enter = ts.threads[0]
            .records
            .iter()
            .find(|r| matches!(r.kind, EventKind::BarrierEnter { .. }))
            .unwrap();
        assert_eq!(enter.time, TimeNs(900));
    }

    #[test]
    fn switch_overhead_applies_after_reschedule() {
        let pt = uniform(1, &[1_000, 1_000]);
        let ts = translate(
            &pt,
            TranslateOptions {
                event_overhead: DurationNs::ZERO,
                switch_overhead: DurationNs(200),
            },
        )
        .unwrap();
        // Phase 0 delta (after ThreadBegin, a reschedule point): 800.
        // Barrier exits instantly; phase 1 delta (after exit): 800.
        assert_eq!(ts.makespan(), TimeNs(1_600));
    }

    #[test]
    fn single_thread_translation_is_identity_shift() {
        let pt = uniform(1, &[123, 456]);
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        assert_eq!(ts.makespan(), TimeNs(579));
    }

    #[test]
    fn remote_events_keep_relative_position() {
        use extrap_time::{ElementId, ThreadId};
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(400),
                accesses: vec![crate::builder::PhaseAccess {
                    after: DurationNs(150),
                    owner: ThreadId(1),
                    element: ElementId(3),
                    declared_bytes: 64,
                    actual_bytes: 8,
                    write: false,
                }],
            },
            PhaseWork {
                compute: DurationNs(400),
                accesses: vec![],
            },
        ]);
        let ts = translate(&p.record(), TranslateOptions::default()).unwrap();
        let remote = ts.threads[0]
            .records
            .iter()
            .find(|r| r.kind.is_remote())
            .unwrap();
        assert_eq!(remote.time, TimeNs(150));
    }

    #[test]
    fn mismatched_barrier_sequences_rejected() {
        use crate::builder::ProgramTraceBuilder;
        let mut b = ProgramTraceBuilder::new(2);
        for (t, barrier) in [(0u32, 0u32), (1, 1)] {
            b.emit(ThreadId(t), EventKind::ThreadBegin);
            b.emit(
                ThreadId(t),
                EventKind::BarrierEnter {
                    barrier: BarrierId(barrier),
                },
            );
            b.emit(
                ThreadId(t),
                EventKind::BarrierExit {
                    barrier: BarrierId(barrier),
                },
            );
            b.emit(ThreadId(t), EventKind::ThreadEnd);
        }
        let pt = b.finish();
        assert!(matches!(
            translate(&pt, TranslateOptions::default()),
            Err(TraceError::BarrierMismatch { .. })
        ));
    }

    #[test]
    fn unmatched_barrier_exit_rejected() {
        use crate::builder::ProgramTraceBuilder;
        let mut b = ProgramTraceBuilder::new(1);
        b.emit(ThreadId(0), EventKind::ThreadBegin);
        b.emit(
            ThreadId(0),
            EventKind::BarrierExit {
                barrier: BarrierId(0),
            },
        );
        let pt = b.finish();
        assert!(matches!(
            translate(&pt, TranslateOptions::default()),
            Err(TraceError::BarrierProtocol { .. })
        ));
    }

    #[test]
    fn no_phase_program_translates() {
        let pt = uniform(3, &[]);
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        assert_eq!(ts.n_threads(), 3);
        assert_eq!(ts.makespan(), TimeNs::ZERO);
    }
}
