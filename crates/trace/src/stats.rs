//! Trace statistics for performance diagnosis.
//!
//! The paper's debugging walk-through (§4.1) leans on exactly these
//! numbers: "trace statistics indicated that *Grid* does not have enough
//! barriers (only 650)", per-access transfer sizes, and the computation /
//! communication balance.

use crate::event::{EventKind, ThreadTrace, TraceSet};
use extrap_time::{DurationNs, ThreadId, TimeNs};

/// Per-thread summary numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThreadStats {
    /// Total events recorded by the thread.
    pub events: usize,
    /// Barriers the thread passed.
    pub barriers: usize,
    /// Remote element reads issued.
    pub remote_reads: usize,
    /// Remote element writes issued.
    pub remote_writes: usize,
    /// Sum of declared (whole-element) transfer sizes, in bytes.
    pub declared_bytes: u64,
    /// Sum of actual transfer sizes, in bytes.
    pub actual_bytes: u64,
    /// Time spent computing (deltas between a resume point and the next
    /// blocking event).
    pub compute: DurationNs,
    /// Time spent inside barriers (enter → exit gaps).
    pub barrier_wait: DurationNs,
    /// The thread's completion time.
    pub end_time: TimeNs,
}

/// Whole-trace summary: per-thread stats plus aggregates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// One entry per thread.
    pub per_thread: Vec<ThreadStats>,
}

impl ThreadStats {
    /// Computes stats for one (translated) thread trace.
    pub fn from_thread(trace: &ThreadTrace) -> ThreadStats {
        let mut s = ThreadStats {
            events: trace.records.len(),
            end_time: trace.end_time(),
            ..ThreadStats::default()
        };
        let mut resume = TimeNs::ZERO;
        let mut barrier_enter: Option<TimeNs> = None;
        for r in &trace.records {
            match r.kind {
                EventKind::BarrierEnter { .. } => {
                    s.barriers += 1;
                    s.compute += r.time.saturating_since(resume);
                    barrier_enter = Some(r.time);
                }
                EventKind::BarrierExit { .. } => {
                    if let Some(enter) = barrier_enter.take() {
                        s.barrier_wait += r.time.saturating_since(enter);
                    }
                    resume = r.time;
                }
                EventKind::RemoteRead {
                    declared_bytes,
                    actual_bytes,
                    ..
                } => {
                    s.remote_reads += 1;
                    s.declared_bytes += u64::from(declared_bytes);
                    s.actual_bytes += u64::from(actual_bytes);
                }
                EventKind::RemoteWrite {
                    declared_bytes,
                    actual_bytes,
                    ..
                } => {
                    s.remote_writes += 1;
                    s.declared_bytes += u64::from(declared_bytes);
                    s.actual_bytes += u64::from(actual_bytes);
                }
                EventKind::ThreadBegin => resume = r.time,
                EventKind::ThreadEnd => {
                    s.compute += r.time.saturating_since(resume);
                    resume = r.time;
                }
                EventKind::Marker { .. } => {}
            }
        }
        s
    }
}

impl TraceStats {
    /// Computes stats for a whole translated trace set.
    pub fn from_set(set: &TraceSet) -> TraceStats {
        TraceStats {
            per_thread: set.threads.iter().map(ThreadStats::from_thread).collect(),
        }
    }

    /// Stats for one thread.
    pub fn thread(&self, t: ThreadId) -> &ThreadStats {
        &self.per_thread[t.index()]
    }

    /// Total remote accesses (reads + writes) across threads.
    pub fn total_remote_accesses(&self) -> usize {
        self.per_thread
            .iter()
            .map(|t| t.remote_reads + t.remote_writes)
            .sum()
    }

    /// Barriers passed per thread (identical across threads for valid
    /// data-parallel traces; returns thread 0's count).
    pub fn barriers(&self) -> usize {
        self.per_thread.first().map(|t| t.barriers).unwrap_or(0)
    }

    /// Total declared transfer volume in bytes.
    pub fn total_declared_bytes(&self) -> u64 {
        self.per_thread.iter().map(|t| t.declared_bytes).sum()
    }

    /// Total actual transfer volume in bytes.
    pub fn total_actual_bytes(&self) -> u64 {
        self.per_thread.iter().map(|t| t.actual_bytes).sum()
    }

    /// Sum of per-thread compute time.
    pub fn total_compute(&self) -> DurationNs {
        self.per_thread.iter().map(|t| t.compute).sum()
    }

    /// The latest thread completion time.
    pub fn makespan(&self) -> TimeNs {
        self.per_thread
            .iter()
            .map(|t| t.end_time)
            .max()
            .unwrap_or(TimeNs::ZERO)
    }

    /// Mean processor utilization in the idealized trace: compute time
    /// divided by (makespan × threads).
    pub fn utilization(&self) -> f64 {
        let span = self.makespan().as_ns() as f64 * self.per_thread.len() as f64;
        if span == 0.0 {
            return 1.0;
        }
        self.total_compute().as_ns() as f64 / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PhaseAccess, PhaseProgram, PhaseWork};
    use crate::translate::translate;
    use extrap_time::ElementId;

    fn skewed_set() -> TraceSet {
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(100),
                accesses: vec![PhaseAccess {
                    after: DurationNs(10),
                    owner: ThreadId(1),
                    element: ElementId(0),
                    declared_bytes: 1000,
                    actual_bytes: 16,
                    write: false,
                }],
            },
            PhaseWork {
                compute: DurationNs(300),
                accesses: vec![],
            },
        ]);
        translate(&p.record(), Default::default()).unwrap()
    }

    #[test]
    fn per_thread_breakdown() {
        let stats = TraceStats::from_set(&skewed_set());
        let t0 = stats.thread(ThreadId(0));
        let t1 = stats.thread(ThreadId(1));
        assert_eq!(t0.barriers, 1);
        assert_eq!(t0.remote_reads, 1);
        assert_eq!(t0.declared_bytes, 1000);
        assert_eq!(t0.actual_bytes, 16);
        assert_eq!(t0.compute, DurationNs(100));
        // Thread 0 waits 200ns for thread 1 at the barrier.
        assert_eq!(t0.barrier_wait, DurationNs(200));
        assert_eq!(t1.barrier_wait, DurationNs(0));
        assert_eq!(t1.compute, DurationNs(300));
    }

    #[test]
    fn aggregates() {
        let stats = TraceStats::from_set(&skewed_set());
        assert_eq!(stats.total_remote_accesses(), 1);
        assert_eq!(stats.barriers(), 1);
        assert_eq!(stats.total_declared_bytes(), 1000);
        assert_eq!(stats.total_actual_bytes(), 16);
        assert_eq!(stats.makespan(), TimeNs(300));
        assert_eq!(stats.total_compute(), DurationNs(400));
        // 400 compute over 2 threads * 300 span.
        assert!((stats.utilization() - 400.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let stats = TraceStats::from_set(&TraceSet { threads: vec![] });
        assert_eq!(stats.barriers(), 0);
        assert_eq!(stats.makespan(), TimeNs::ZERO);
        assert_eq!(stats.utilization(), 1.0);
    }
}
