//! The compact binary trace format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! ProgramTrace file:            TraceSet file:
//!   magic   b"XTRP"               magic   b"XTPS"
//!   version u16 (= 1)             version u16 (= 1)
//!   n_threads u32                 n_threads u32
//!   n_records u64                 per thread:
//!   records ...                     thread    u32
//!                                   n_records u64
//!                                   records ...
//! record:
//!   time   u64
//!   thread u32
//!   kind   u8
//!   payload (kind-dependent, see `encode_record`)
//! ```

use crate::bytesio::{Buf, BufMut};
use crate::error::TraceError;
use crate::event::{EventKind, ProgramTrace, ThreadTrace, TraceRecord, TraceSet};
use extrap_time::{BarrierId, ElementId, ThreadId, TimeNs};

/// Magic bytes for a program (1-processor) trace file.
pub const PROGRAM_MAGIC: &[u8; 4] = b"XTRP";
/// Magic bytes for a translated trace-set file.
pub const SET_MAGIC: &[u8; 4] = b"XTPS";
/// Current format version.
pub const VERSION: u16 = 1;

const KIND_BEGIN: u8 = 0;
const KIND_END: u8 = 1;
const KIND_BARRIER_ENTER: u8 = 2;
const KIND_BARRIER_EXIT: u8 = 3;
const KIND_REMOTE_READ: u8 = 4;
const KIND_REMOTE_WRITE: u8 = 5;
const KIND_MARKER: u8 = 6;

/// Appends one record to `buf`.
pub fn encode_record(buf: &mut impl BufMut, rec: &TraceRecord) {
    buf.put_u64_le(rec.time.as_ns());
    buf.put_u32_le(rec.thread.0);
    match rec.kind {
        EventKind::ThreadBegin => buf.put_u8(KIND_BEGIN),
        EventKind::ThreadEnd => buf.put_u8(KIND_END),
        EventKind::BarrierEnter { barrier } => {
            buf.put_u8(KIND_BARRIER_ENTER);
            buf.put_u32_le(barrier.0);
        }
        EventKind::BarrierExit { barrier } => {
            buf.put_u8(KIND_BARRIER_EXIT);
            buf.put_u32_le(barrier.0);
        }
        EventKind::RemoteRead {
            owner,
            element,
            declared_bytes,
            actual_bytes,
        } => {
            buf.put_u8(KIND_REMOTE_READ);
            buf.put_u32_le(owner.0);
            buf.put_u32_le(element.0);
            buf.put_u32_le(declared_bytes);
            buf.put_u32_le(actual_bytes);
        }
        EventKind::RemoteWrite {
            owner,
            element,
            declared_bytes,
            actual_bytes,
        } => {
            buf.put_u8(KIND_REMOTE_WRITE);
            buf.put_u32_le(owner.0);
            buf.put_u32_le(element.0);
            buf.put_u32_le(declared_bytes);
            buf.put_u32_le(actual_bytes);
        }
        EventKind::Marker { id } => {
            buf.put_u8(KIND_MARKER);
            buf.put_u32_le(id);
        }
    }
}

/// Decodes one record from `buf`.
///
/// # Errors
/// Returns a format error on truncation or an unknown kind byte.
pub fn decode_record(buf: &mut impl Buf) -> Result<TraceRecord, TraceError> {
    if buf.remaining() < 8 + 4 + 1 {
        return Err(truncated("record header"));
    }
    let time = TimeNs(buf.get_u64_le());
    let thread = ThreadId(buf.get_u32_le());
    let kind_byte = buf.get_u8();
    let kind = match kind_byte {
        KIND_BEGIN => EventKind::ThreadBegin,
        KIND_END => EventKind::ThreadEnd,
        KIND_BARRIER_ENTER => EventKind::BarrierEnter {
            barrier: BarrierId(get_u32(buf, "barrier id")?),
        },
        KIND_BARRIER_EXIT => EventKind::BarrierExit {
            barrier: BarrierId(get_u32(buf, "barrier id")?),
        },
        KIND_REMOTE_READ | KIND_REMOTE_WRITE => {
            let owner = ThreadId(get_u32(buf, "owner")?);
            let element = ElementId(get_u32(buf, "element")?);
            let declared_bytes = get_u32(buf, "declared size")?;
            let actual_bytes = get_u32(buf, "actual size")?;
            if kind_byte == KIND_REMOTE_READ {
                EventKind::RemoteRead {
                    owner,
                    element,
                    declared_bytes,
                    actual_bytes,
                }
            } else {
                EventKind::RemoteWrite {
                    owner,
                    element,
                    declared_bytes,
                    actual_bytes,
                }
            }
        }
        KIND_MARKER => EventKind::Marker {
            id: get_u32(buf, "marker id")?,
        },
        other => {
            return Err(TraceError::Format {
                detail: format!("unknown event kind byte {other}"),
            })
        }
    };
    Ok(TraceRecord { time, thread, kind })
}

/// Encodes a whole program trace to bytes.
pub fn encode_program(trace: &ProgramTrace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(18 + trace.records.len() * 16);
    buf.put_slice(PROGRAM_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(trace.n_threads as u32);
    buf.put_u64_le(trace.records.len() as u64);
    for r in &trace.records {
        encode_record(&mut buf, r);
    }
    buf
}

/// Decodes a program trace from bytes and validates it.
pub fn decode_program(data: &[u8]) -> Result<ProgramTrace, TraceError> {
    let pt = decode_program_raw(data)?;
    pt.validate()?;
    Ok(pt)
}

/// Decodes a program trace without checking semantic invariants.
///
/// Structural errors (bad magic/version, truncation, unknown kinds,
/// trailing bytes) are still rejected, but timestamp ordering and
/// thread-range invariants are **not** enforced — this is the entry
/// point for diagnostic tools (`extrap-lint`) that want to see the whole
/// record stream of a corrupted trace rather than fail at the first
/// violation.
pub fn decode_program_raw(mut data: &[u8]) -> Result<ProgramTrace, TraceError> {
    check_header(&mut data, PROGRAM_MAGIC)?;
    let n_threads = get_u32(&mut data, "thread count")? as usize;
    let n_records = get_u64(&mut data, "record count")? as usize;
    let mut records = Vec::with_capacity(n_records.min(1 << 20));
    for _ in 0..n_records {
        records.push(decode_record(&mut data)?);
    }
    if data.has_remaining() {
        return Err(TraceError::Format {
            detail: format!("{} trailing bytes after records", data.remaining()),
        });
    }
    Ok(ProgramTrace { n_threads, records })
}

/// Encodes a translated trace set to bytes.
pub fn encode_set(set: &TraceSet) -> Vec<u8> {
    let total: usize = set.threads.iter().map(|t| t.records.len()).sum();
    let mut buf = Vec::with_capacity(10 + total * 16);
    buf.put_slice(SET_MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(set.n_threads() as u32);
    for t in &set.threads {
        buf.put_u32_le(t.thread.0);
        buf.put_u64_le(t.records.len() as u64);
        for r in &t.records {
            encode_record(&mut buf, r);
        }
    }
    buf
}

/// Decodes a trace set from bytes and validates it.
pub fn decode_set(data: &[u8]) -> Result<TraceSet, TraceError> {
    let set = decode_set_raw(data)?;
    set.validate()?;
    Ok(set)
}

/// Decodes a trace set without checking semantic invariants (the
/// [`decode_program_raw`] counterpart for translated traces).
pub fn decode_set_raw(mut data: &[u8]) -> Result<TraceSet, TraceError> {
    check_header(&mut data, SET_MAGIC)?;
    let n_threads = get_u32(&mut data, "thread count")? as usize;
    let mut threads = Vec::with_capacity(n_threads.min(1 << 16));
    for _ in 0..n_threads {
        let thread = ThreadId(get_u32(&mut data, "thread id")?);
        let n_records = get_u64(&mut data, "record count")? as usize;
        let mut records = Vec::with_capacity(n_records.min(1 << 20));
        for _ in 0..n_records {
            records.push(decode_record(&mut data)?);
        }
        threads.push(ThreadTrace { thread, records });
    }
    if data.has_remaining() {
        return Err(TraceError::Format {
            detail: format!("{} trailing bytes after records", data.remaining()),
        });
    }
    Ok(TraceSet { threads })
}

pub(crate) fn check_header(data: &mut &[u8], magic: &[u8; 4]) -> Result<(), TraceError> {
    if data.remaining() < 6 {
        return Err(truncated("file header"));
    }
    let mut found = [0u8; 4];
    data.copy_to_slice(&mut found);
    if &found != magic {
        return Err(TraceError::Format {
            detail: format!("bad magic {found:?}, expected {magic:?}"),
        });
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(TraceError::Format {
            detail: format!("unsupported format version {version}"),
        });
    }
    Ok(())
}

pub(crate) fn get_u32(buf: &mut impl Buf, what: &str) -> Result<u32, TraceError> {
    if buf.remaining() < 4 {
        return Err(truncated(what));
    }
    Ok(buf.get_u32_le())
}

pub(crate) fn get_u64(buf: &mut impl Buf, what: &str) -> Result<u64, TraceError> {
    if buf.remaining() < 8 {
        return Err(truncated(what));
    }
    Ok(buf.get_u64_le())
}

fn truncated(what: &str) -> TraceError {
    TraceError::Format {
        detail: format!("truncated while reading {what}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PhaseProgram;
    use crate::translate::{translate, TranslateOptions};
    use extrap_time::DurationNs;

    fn sample_program() -> ProgramTrace {
        let mut p = PhaseProgram::new(3);
        p.push_uniform_phase(DurationNs(100));
        p.push_uniform_phase(DurationNs(250));
        p.record()
    }

    #[test]
    fn program_round_trip() {
        let pt = sample_program();
        let bytes = encode_program(&pt);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(pt, back);
    }

    #[test]
    fn set_round_trip() {
        let ts = translate(&sample_program(), TranslateOptions::default()).unwrap();
        let bytes = encode_set(&ts);
        let back = decode_set(&bytes).unwrap();
        assert_eq!(ts, back);
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = [
            EventKind::ThreadBegin,
            EventKind::ThreadEnd,
            EventKind::BarrierEnter {
                barrier: BarrierId(9),
            },
            EventKind::BarrierExit {
                barrier: BarrierId(9),
            },
            EventKind::RemoteRead {
                owner: ThreadId(2),
                element: ElementId(77),
                declared_bytes: 231_456,
                actual_bytes: 128,
            },
            EventKind::RemoteWrite {
                owner: ThreadId(1),
                element: ElementId(5),
                declared_bytes: 64,
                actual_bytes: 2,
            },
            EventKind::Marker { id: 42 },
        ];
        for kind in kinds {
            let rec = TraceRecord {
                time: TimeNs(123_456_789),
                thread: ThreadId(3),
                kind,
            };
            let mut buf = Vec::new();
            encode_record(&mut buf, &rec);
            let back = decode_record(&mut &buf[..]).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_program(&sample_program());
        bytes[0] = b'Z';
        assert!(matches!(
            decode_program(&bytes),
            Err(TraceError::Format { .. })
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_program(&sample_program());
        bytes[4] = 99;
        assert!(decode_program(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_program(&sample_program());
        for cut in [0, 3, 6, 10, bytes.len() - 1] {
            assert!(decode_program(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_program(&sample_program());
        bytes.push(0);
        assert!(decode_program(&bytes).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let rec = TraceRecord {
            time: TimeNs(1),
            thread: ThreadId(0),
            kind: EventKind::ThreadBegin,
        };
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec);
        let last = buf.len() - 1;
        buf[last] = 200;
        assert!(decode_record(&mut &buf[..]).is_err());
    }
}
