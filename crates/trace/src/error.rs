//! Error type shared by the trace containers, formats, and translation.

use extrap_time::ThreadId;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Everything that can go wrong while building, validating, serializing,
/// or translating traces.
#[derive(Debug)]
pub enum TraceError {
    /// A record references a thread id outside `0..n_threads`.
    BadThread {
        /// Index of the offending record in the global stream.
        record: usize,
        /// The referenced thread.
        thread: ThreadId,
        /// The trace's declared thread count.
        n_threads: usize,
    },
    /// Global timestamps went backwards.
    TimeRegression {
        /// Index of the offending record.
        record: usize,
    },
    /// A per-thread timestamp went backwards.
    ThreadTimeRegression {
        /// The thread whose clock regressed.
        thread: ThreadId,
        /// Index of the offending record within the thread trace.
        record: usize,
    },
    /// A thread trace is stored at the wrong position, or contains records
    /// of another thread.
    MisplacedThread {
        /// Position in the trace set.
        position: usize,
        /// Thread id actually found.
        thread: ThreadId,
    },
    /// Threads disagree on the barrier sequence — the program violates the
    /// data-parallel determinism assumption (§5).
    BarrierMismatch {
        /// First thread whose barrier sequence deviates from thread 0's.
        thread: ThreadId,
    },
    /// A barrier was exited before every thread entered it, or entered
    /// twice without an exit.
    BarrierProtocol {
        /// The offending thread.
        thread: ThreadId,
        /// Description of the violation.
        detail: String,
    },
    /// Binary or text format corruption.
    Format {
        /// Description of the corruption.
        detail: String,
    },
    /// A caller-supplied validation hook rejected the trace (e.g. a lint
    /// pass found errors on load).
    Validation {
        /// Rendered description of the rejection.
        detail: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
    /// Any of the above, annotated with the file it occurred in.  Produced
    /// by the file-backed streaming readers so a refill failure mid-file
    /// reports the path, not just the offset.
    InFile {
        /// The file being read when the error occurred.
        path: PathBuf,
        /// The underlying error.
        source: Box<TraceError>,
    },
}

impl TraceError {
    /// Annotates this error with the file it occurred in.  Idempotent: an
    /// error already carrying a path is returned unchanged (the innermost
    /// attribution wins).
    pub fn in_file(self, path: impl AsRef<Path>) -> TraceError {
        match self {
            e @ TraceError::InFile { .. } => e,
            e => TraceError::InFile {
                path: path.as_ref().to_path_buf(),
                source: Box::new(e),
            },
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadThread {
                record,
                thread,
                n_threads,
            } => write!(
                f,
                "record {record} references {thread} but the trace has {n_threads} threads"
            ),
            TraceError::TimeRegression { record } => {
                write!(f, "global timestamp regression at record {record}")
            }
            TraceError::ThreadTimeRegression { thread, record } => {
                write!(f, "timestamp regression in {thread} at record {record}")
            }
            TraceError::MisplacedThread { position, thread } => {
                write!(
                    f,
                    "trace at position {position} contains records of {thread}"
                )
            }
            TraceError::BarrierMismatch { thread } => write!(
                f,
                "{thread} passes a different barrier sequence than thread 0 \
                 (program is not deterministically data-parallel)"
            ),
            TraceError::BarrierProtocol { thread, detail } => {
                write!(f, "barrier protocol violation in {thread}: {detail}")
            }
            TraceError::Format { detail } => write!(f, "malformed trace: {detail}"),
            TraceError::Validation { detail } => {
                write!(f, "trace rejected by validation: {detail}")
            }
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::InFile { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::InFile { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::BarrierMismatch {
            thread: ThreadId(3),
        };
        assert!(e.to_string().contains("T3"));
        let e = TraceError::Format {
            detail: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn in_file_annotates_and_is_idempotent() {
        let e = TraceError::Format {
            detail: "bad magic".into(),
        }
        .in_file("a.xtrp");
        assert_eq!(e.to_string(), "a.xtrp: malformed trace: bad magic");
        // Re-wrapping keeps the innermost (most precise) attribution.
        let e = e.in_file("b.xtrp");
        assert_eq!(e.to_string(), "a.xtrp: malformed trace: bad magic");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_error_converts() {
        let e: TraceError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, TraceError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
