//! Writing traces to streams and files.

use crate::error::TraceError;
use crate::event::{ProgramTrace, TraceSet};
use crate::format;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes a program trace in binary form to any `Write` sink.
pub fn write_program(w: &mut impl Write, trace: &ProgramTrace) -> Result<(), TraceError> {
    w.write_all(&format::encode_program(trace))?;
    Ok(())
}

/// Writes a program trace to a file (created or truncated).
pub fn write_program_file(path: impl AsRef<Path>, trace: &ProgramTrace) -> Result<(), TraceError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_program(&mut w, trace)?;
    w.flush()?;
    Ok(())
}

/// Writes a translated trace set in binary form to any `Write` sink.
pub fn write_set(w: &mut impl Write, set: &TraceSet) -> Result<(), TraceError> {
    w.write_all(&format::encode_set(set))?;
    Ok(())
}

/// Writes a translated trace set to a file (created or truncated).
pub fn write_set_file(path: impl AsRef<Path>, set: &TraceSet) -> Result<(), TraceError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_set(&mut w, set)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PhaseProgram;
    use crate::reader;
    use extrap_time::DurationNs;

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("extrap-trace-writer-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.xtrp");

        let mut p = PhaseProgram::new(2);
        p.push_uniform_phase(DurationNs(10));
        let pt = p.record();
        write_program_file(&path, &pt).unwrap();
        let back = reader::read_program_file(&path).unwrap();
        assert_eq!(pt, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_round_trip_set() {
        let mut p = PhaseProgram::new(2);
        p.push_uniform_phase(DurationNs(10));
        let ts = crate::translate(&p.record(), Default::default()).unwrap();
        let mut buf = Vec::new();
        write_set(&mut buf, &ts).unwrap();
        let back = reader::read_set(&mut &buf[..]).unwrap();
        assert_eq!(ts, back);
    }
}
