//! Minimal little-endian byte-buffer traits (a `bytes`-crate subset).
//!
//! The build container has no crates.io access, so the binary codec uses
//! these two traits instead of `bytes::{Buf, BufMut}`: [`BufMut`] is
//! implemented for `Vec<u8>` and [`Buf`] for `&[u8]`, covering exactly
//! the fixed-width little-endian accessors the format needs.

/// A growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A byte source with a read cursor.
///
/// Callers must check [`Buf::remaining`] before reading; the fixed-width
/// getters panic on underflow (the codec's `get_u32`/`get_u64` helpers
/// wrap them with truncation checks).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads `dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xy");
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert!(!r.has_remaining());
    }
}
