//! Marker-delimited phase profiles.
//!
//! Programs can bracket logical phases with [`EventKind::Marker`] events
//! (`ctx.marker(id)` in the runtime).  This module splits a translated or
//! predicted trace at marker boundaries and reports, per phase and per
//! thread, where the time went — the "which part of my program is the
//! bottleneck" question a performance debugger asks first.
//!
//! A marker with id `k` starts phase `k`; the region before the first
//! marker is phase `u32::MAX` (labelled "prelude").

use crate::event::{EventKind, TraceSet};
use extrap_time::{DurationNs, TimeNs};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated times of one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Computation time summed across threads.
    pub compute: DurationNs,
    /// Barrier wait summed across threads.
    pub barrier_wait: DurationNs,
    /// Remote accesses issued.
    pub remote_accesses: usize,
    /// Actual bytes requested.
    pub actual_bytes: u64,
    /// Barriers entered.
    pub barriers: usize,
}

/// The id used for events before the first marker.
pub const PRELUDE: u32 = u32::MAX;

/// Splits the trace into per-marker phases and profiles each.
pub fn phase_profiles(set: &TraceSet) -> BTreeMap<u32, PhaseProfile> {
    let mut phases: BTreeMap<u32, PhaseProfile> = BTreeMap::new();
    for thread in &set.threads {
        let mut current = PRELUDE;
        let mut resume = TimeNs::ZERO;
        let mut barrier_enter: Option<TimeNs> = None;
        for rec in &thread.records {
            let entry = phases.entry(current).or_default();
            match rec.kind {
                EventKind::Marker { id } => {
                    entry.compute += rec.time.saturating_since(resume);
                    resume = rec.time;
                    current = id;
                }
                EventKind::ThreadBegin => resume = rec.time,
                EventKind::BarrierEnter { .. } => {
                    entry.compute += rec.time.saturating_since(resume);
                    entry.barriers += 1;
                    barrier_enter = Some(rec.time);
                }
                EventKind::BarrierExit { .. } => {
                    if let Some(enter) = barrier_enter.take() {
                        entry.barrier_wait += rec.time.saturating_since(enter);
                    }
                    resume = rec.time;
                }
                EventKind::RemoteRead { actual_bytes, .. }
                | EventKind::RemoteWrite { actual_bytes, .. } => {
                    entry.remote_accesses += 1;
                    entry.actual_bytes += u64::from(actual_bytes);
                }
                EventKind::ThreadEnd => {
                    entry.compute += rec.time.saturating_since(resume);
                    resume = rec.time;
                }
            }
        }
    }
    phases
}

/// Renders the profile as an aligned table.
pub fn render(profiles: &BTreeMap<u32, PhaseProfile>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>8} {:>12} {:>8}",
        "phase", "compute[ms]", "barwait[ms]", "barriers", "bytes", "accesses"
    );
    for (id, p) in profiles {
        let label = if *id == PRELUDE {
            "prelude".to_string()
        } else {
            id.to_string()
        };
        let _ = writeln!(
            out,
            "{:>8} {:>12.3} {:>12.3} {:>8} {:>12} {:>8}",
            label,
            p.compute.as_us() / 1_000.0,
            p.barrier_wait.as_us() / 1_000.0,
            p.barriers,
            p.actual_bytes,
            p.remote_accesses
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_time::DurationNs;
    use pcpp_rt_free_test_helpers::*;

    // Tiny local helpers (avoid a dev-dependency cycle with pcpp-rt).
    mod pcpp_rt_free_test_helpers {
        use crate::builder::ProgramTraceBuilder;
        use crate::event::{EventKind, ProgramTrace};
        use extrap_time::{BarrierId, DurationNs, ThreadId};

        /// One thread: [begin, 100ns compute, marker 1, 200ns compute,
        /// barrier, marker 2, 300ns compute, end].
        pub fn marked_program() -> ProgramTrace {
            let mut b = ProgramTraceBuilder::new(1);
            let t = ThreadId(0);
            b.emit(t, EventKind::ThreadBegin);
            b.advance(DurationNs(100));
            b.emit(t, EventKind::Marker { id: 1 });
            b.advance(DurationNs(200));
            b.emit(
                t,
                EventKind::BarrierEnter {
                    barrier: BarrierId(0),
                },
            );
            b.emit(
                t,
                EventKind::BarrierExit {
                    barrier: BarrierId(0),
                },
            );
            b.emit(t, EventKind::Marker { id: 2 });
            b.advance(DurationNs(300));
            b.emit(t, EventKind::ThreadEnd);
            b.finish()
        }
    }

    #[test]
    fn phases_split_at_markers() {
        let ts = crate::translate(&marked_program(), Default::default()).unwrap();
        let profiles = phase_profiles(&ts);
        assert_eq!(profiles.len(), 3);
        assert_eq!(profiles[&PRELUDE].compute, DurationNs(100));
        assert_eq!(profiles[&1].compute, DurationNs(200));
        assert_eq!(profiles[&1].barriers, 1);
        assert_eq!(profiles[&2].compute, DurationNs(300));
    }

    #[test]
    fn render_includes_each_phase() {
        let ts = crate::translate(&marked_program(), Default::default()).unwrap();
        let text = render(&phase_profiles(&ts));
        assert!(text.contains("prelude"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn unmarked_trace_is_all_prelude() {
        let mut p = crate::builder::PhaseProgram::new(2);
        p.push_uniform_phase(DurationNs(500));
        let ts = crate::translate(&p.record(), Default::default()).unwrap();
        let profiles = phase_profiles(&ts);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[&PRELUDE].compute, DurationNs(1_000));
        assert_eq!(profiles[&PRELUDE].barriers, 2);
    }
}
