//! Marker-delimited phase profiles.
//!
//! Programs can bracket logical phases with [`EventKind::Marker`] events
//! (`ctx.marker(id)` in the runtime).  This module splits a translated or
//! predicted trace at marker boundaries and reports, per phase and per
//! thread, where the time went — the "which part of my program is the
//! bottleneck" question a performance debugger asks first.
//!
//! A marker with id `k` starts phase `k`; the region before the first
//! marker is phase `u32::MAX` (labelled "prelude").

use crate::event::{EventKind, TraceSet};
use extrap_time::{DurationNs, TimeNs};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated times of one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Computation time summed across threads.
    pub compute: DurationNs,
    /// Barrier wait summed across threads.
    pub barrier_wait: DurationNs,
    /// Remote accesses issued.
    pub remote_accesses: usize,
    /// Actual bytes requested.
    pub actual_bytes: u64,
    /// Barriers entered.
    pub barriers: usize,
}

/// The id used for events before the first marker.
pub const PRELUDE: u32 = u32::MAX;

/// Splits the trace into per-marker phases and profiles each.
pub fn phase_profiles(set: &TraceSet) -> BTreeMap<u32, PhaseProfile> {
    let mut phases: BTreeMap<u32, PhaseProfile> = BTreeMap::new();
    for thread in &set.threads {
        let mut current = PRELUDE;
        let mut resume = TimeNs::ZERO;
        let mut barrier_enter: Option<TimeNs> = None;
        for rec in &thread.records {
            let entry = phases.entry(current).or_default();
            match rec.kind {
                EventKind::Marker { id } => {
                    entry.compute += rec.time.saturating_since(resume);
                    resume = rec.time;
                    current = id;
                }
                EventKind::ThreadBegin => resume = rec.time,
                EventKind::BarrierEnter { .. } => {
                    entry.compute += rec.time.saturating_since(resume);
                    entry.barriers += 1;
                    barrier_enter = Some(rec.time);
                }
                EventKind::BarrierExit { .. } => {
                    if let Some(enter) = barrier_enter.take() {
                        entry.barrier_wait += rec.time.saturating_since(enter);
                    }
                    resume = rec.time;
                }
                EventKind::RemoteRead { actual_bytes, .. }
                | EventKind::RemoteWrite { actual_bytes, .. } => {
                    entry.remote_accesses += 1;
                    entry.actual_bytes += u64::from(actual_bytes);
                }
                EventKind::ThreadEnd => {
                    entry.compute += rec.time.saturating_since(resume);
                    resume = rec.time;
                }
            }
        }
    }
    phases
}

/// Renders the profile as an aligned table.
pub fn render(profiles: &BTreeMap<u32, PhaseProfile>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>8} {:>12} {:>8}",
        "phase", "compute[ms]", "barwait[ms]", "barriers", "bytes", "accesses"
    );
    for (id, p) in profiles {
        let label = if *id == PRELUDE {
            "prelude".to_string()
        } else {
            id.to_string()
        };
        let _ = writeln!(
            out,
            "{:>8} {:>12.3} {:>12.3} {:>8} {:>12} {:>8}",
            label,
            p.compute.as_us() / 1_000.0,
            p.barrier_wait.as_us() / 1_000.0,
            p.barriers,
            p.actual_bytes,
            p.remote_accesses
        );
    }
    out
}

/// How a barrier epoch ends: at a barrier, or at program end (the final
/// epoch).  Epochs with different terminators never cluster together —
/// the tail epoch has no barrier cost, so merging it with an interior
/// epoch would mis-compose barrier statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochTerminator {
    /// The epoch ends at a global barrier.
    Barrier,
    /// The epoch ends at program end (no trailing barrier).
    End,
}

/// The workload fingerprint of one barrier epoch, aggregated across
/// threads.  Two epochs with near-identical signatures are assumed to
/// simulate to near-identical costs — the SimPoint hypothesis applied
/// to barrier-delimited phases instead of instruction intervals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochSignature {
    /// Computation time summed across threads.
    pub compute: DurationNs,
    /// Barrier wait summed across threads (zero for idealized traces).
    pub barrier_wait: DurationNs,
    /// Remote element reads issued.
    pub remote_reads: u64,
    /// Remote element writes issued.
    pub remote_writes: u64,
    /// Declared (compile-time) bytes of all remote accesses.
    pub declared_bytes: u64,
    /// Actual (runtime) bytes of all remote accesses.
    pub actual_bytes: u64,
    /// How the epoch ends.
    pub terminator: EpochTerminator,
}

impl EpochSignature {
    /// An all-zero signature ending at a barrier.
    pub fn zero(terminator: EpochTerminator) -> EpochSignature {
        EpochSignature {
            compute: DurationNs::ZERO,
            barrier_wait: DurationNs::ZERO,
            remote_reads: 0,
            remote_writes: 0,
            declared_bytes: 0,
            actual_bytes: 0,
            terminator,
        }
    }

    /// The signature's numeric features in a fixed order (the distance
    /// metric and normalization iterate over this).
    fn features(&self) -> [f64; 6] {
        [
            self.compute.as_ns() as f64,
            self.barrier_wait.as_ns() as f64,
            self.remote_reads as f64,
            self.remote_writes as f64,
            self.declared_bytes as f64,
            self.actual_bytes as f64,
        ]
    }
}

/// Splits a translated trace into barrier epochs and fingerprints each.
///
/// Epoch `k` is everything between global barrier `k-1` and barrier `k`;
/// the final epoch runs to program end.  [`TraceSet`] validation
/// guarantees every thread observes the same barrier sequence, so epochs
/// are globally aligned and the per-thread walks can aggregate into one
/// shared vector of `barriers + 1` signatures.
pub fn epoch_signatures(set: &TraceSet) -> Vec<EpochSignature> {
    let n_epochs = set
        .threads
        .first()
        .map_or(0, |t| t.barrier_sequence().len() + 1);
    if n_epochs == 0 {
        return Vec::new();
    }
    let mut sigs = vec![EpochSignature::zero(EpochTerminator::Barrier); n_epochs];
    if let Some(last) = sigs.last_mut() {
        last.terminator = EpochTerminator::End;
    }
    for thread in &set.threads {
        let mut epoch = 0usize;
        let mut resume = TimeNs::ZERO;
        let mut barrier_enter: Option<TimeNs> = None;
        for rec in &thread.records {
            let sig = &mut sigs[epoch.min(n_epochs - 1)];
            match rec.kind {
                EventKind::ThreadBegin => resume = rec.time,
                EventKind::Marker { .. } => {}
                EventKind::BarrierEnter { .. } => {
                    sig.compute += rec.time.saturating_since(resume);
                    barrier_enter = Some(rec.time);
                }
                EventKind::BarrierExit { .. } => {
                    if let Some(enter) = barrier_enter.take() {
                        sig.barrier_wait += rec.time.saturating_since(enter);
                    }
                    resume = rec.time;
                    epoch += 1;
                }
                EventKind::RemoteRead {
                    declared_bytes,
                    actual_bytes,
                    ..
                } => {
                    sig.remote_reads += 1;
                    sig.declared_bytes += u64::from(declared_bytes);
                    sig.actual_bytes += u64::from(actual_bytes);
                }
                EventKind::RemoteWrite {
                    declared_bytes,
                    actual_bytes,
                    ..
                } => {
                    sig.remote_writes += 1;
                    sig.declared_bytes += u64::from(declared_bytes);
                    sig.actual_bytes += u64::from(actual_bytes);
                }
                EventKind::ThreadEnd => {
                    sig.compute += rec.time.saturating_since(resume);
                    resume = rec.time;
                }
            }
        }
    }
    sigs
}

/// Knobs of [`cluster_epochs`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterOptions {
    /// Upper bound on the number of clusters; exceeding it means the
    /// trace has no exploitable repetition at this tolerance.
    pub max_clusters: usize,
    /// Distance threshold for joining a cluster, in normalized units
    /// (0 = byte-identical signatures only, 1 = anything goes).
    pub tolerance: f64,
}

impl Default for ClusterOptions {
    fn default() -> ClusterOptions {
        ClusterOptions {
            max_clusters: 16,
            tolerance: 0.05,
        }
    }
}

/// One cluster of near-identical epochs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochCluster {
    /// Index of the representative (medoid) epoch.
    pub rep: usize,
    /// How many epochs the cluster covers.
    pub weight: u64,
}

/// A deterministic partition of a trace's epochs into clusters of
/// near-identical signatures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochClustering {
    /// `assignment[e]` is the cluster index of epoch `e`.
    pub assignment: Vec<u32>,
    /// The clusters, in first-seen epoch order.
    pub clusters: Vec<EpochCluster>,
}

impl EpochClustering {
    /// Total epochs partitioned.
    pub fn n_epochs(&self) -> usize {
        self.assignment.len()
    }

    /// Epochs per cluster: the repetition this clustering exploits.
    /// `1.0` means no repetition at all.
    pub fn repetition(&self) -> f64 {
        if self.clusters.is_empty() {
            return 1.0;
        }
        self.assignment.len() as f64 / self.clusters.len() as f64
    }
}

/// SplitMix64: the seeded deterministic PRNG behind medoid sampling and
/// the synthetic periodic traces in tests.  Public so every consumer
/// draws from the identical stream regardless of crate.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mean pairwise *relative* difference over features — `|a-b| /
/// max(a,b)` per feature, averaged over the features where either side
/// is nonzero — and infinite when the terminators differ (those epochs
/// must never merge).
///
/// Relative (not max-normalized) distance is what bounds composition
/// error: every member of a cluster matches its representative to
/// within ~tolerance *in proportion*, so scaling the representative's
/// simulated cost by the member count misestimates each epoch by at
/// most ~tolerance.  Max-normalization would instead call two small
/// epochs "close" even when one does 4x the other's work.
fn distance(a: &EpochSignature, b: &EpochSignature) -> f64 {
    if a.terminator != b.terminator {
        return f64::INFINITY;
    }
    let (fa, fb) = (a.features(), b.features());
    let mut sum = 0.0;
    let mut n = 0u32;
    for i in 0..6 {
        let denom = fa[i].max(fb[i]);
        if denom > 0.0 {
            sum += (fa[i] - fb[i]).abs() / denom;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / f64::from(n)
    }
}

/// Greedy-threshold clustering of epoch signatures, SimPoint style.
///
/// Each epoch joins the first existing cluster whose representative is
/// within `tolerance` (mean relative distance), else founds a new
/// cluster.
/// A medoid-refinement pass then re-picks each cluster's representative
/// as the member minimizing total distance to a SplitMix64-sampled
/// subset (capped at 64 members) of its cluster.  The whole procedure is
/// a pure function of the signature vector — byte-stable across worker
/// counts, platforms, and runs.
///
/// Returns `None` when more than `max_clusters` clusters would be
/// needed: the trace has no exploitable repetition at this tolerance and
/// callers should simulate exactly.
pub fn cluster_epochs(sigs: &[EpochSignature], opts: &ClusterOptions) -> Option<EpochClustering> {
    if sigs.is_empty() || opts.max_clusters == 0 {
        return None;
    }
    let mut assignment = vec![0u32; sigs.len()];
    let mut clusters: Vec<EpochCluster> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (e, sig) in sigs.iter().enumerate() {
        let found = clusters
            .iter()
            .position(|c| distance(sig, &sigs[c.rep]) <= opts.tolerance);
        match found {
            Some(c) => {
                assignment[e] = c as u32;
                clusters[c].weight += 1;
                members[c].push(e);
            }
            None => {
                if clusters.len() == opts.max_clusters {
                    return None;
                }
                assignment[e] = clusters.len() as u32;
                clusters.push(EpochCluster { rep: e, weight: 1 });
                members.push(vec![e]);
            }
        }
    }

    // Medoid refinement: the first-fit founder may sit at the edge of
    // its cluster; re-pick the member closest to everyone else (sampled
    // when the cluster is large, with a seed derived from the cluster
    // index so the choice is reproducible).
    const SAMPLE_CAP: usize = 64;
    for (c, cluster) in clusters.iter_mut().enumerate() {
        let m = &members[c];
        if m.len() <= 2 {
            continue;
        }
        let sample: Vec<usize> = if m.len() <= SAMPLE_CAP {
            m.clone()
        } else {
            let mut rng = 0x5EED_0000_0000_0000 ^ c as u64;
            (0..SAMPLE_CAP)
                .map(|_| m[(splitmix64(&mut rng) % m.len() as u64) as usize])
                .collect()
        };
        let best = m
            .iter()
            .map(|&cand| {
                let cost: f64 = sample
                    .iter()
                    .map(|&o| distance(&sigs[cand], &sigs[o]))
                    .sum();
                (cand, cost)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(cand, _)| cand);
        if let Some(rep) = best {
            cluster.rep = rep;
        }
    }

    Some(EpochClustering {
        assignment,
        clusters,
    })
}

/// Renders a clustering (with its signatures) as an aligned table — the
/// `extrap stats --phases` view.
pub fn render_clusters(sigs: &[EpochSignature], clustering: &EpochClustering) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} epochs in {} clusters (repetition {:.1}x)",
        clustering.n_epochs(),
        clustering.clusters.len(),
        clustering.repetition()
    );
    let _ = writeln!(
        out,
        "{:>7} {:>7} {:>7} {:>12} {:>8} {:>8} {:>12} {:>5}",
        "cluster", "weight", "rep", "compute[ms]", "reads", "writes", "bytes", "end"
    );
    for (c, cluster) in clustering.clusters.iter().enumerate() {
        let sig = &sigs[cluster.rep];
        let _ = writeln!(
            out,
            "{:>7} {:>7} {:>7} {:>12.3} {:>8} {:>8} {:>12} {:>5}",
            c,
            cluster.weight,
            cluster.rep,
            sig.compute.as_us() / 1_000.0,
            sig.remote_reads,
            sig.remote_writes,
            sig.actual_bytes,
            match sig.terminator {
                EpochTerminator::Barrier => "bar",
                EpochTerminator::End => "eof",
            }
        );
    }
    out
}

/// Renders the full `extrap stats` report for a trace set: the
/// marker-phase table, plus (with `phases`) the barrier-epoch cluster
/// structure under `opts`.
///
/// This is the *single* renderer behind both the local `extrap stats`
/// command and the served `client stats` path — one string builder, so
/// remote output is byte-identical to local output by construction.
pub fn render_stats_report(set: &TraceSet, phases: bool, opts: &ClusterOptions) -> String {
    let mut out = String::from("-- marker phases --\n");
    out.push_str(&render(&phase_profiles(set)));
    if phases {
        let sigs = epoch_signatures(set);
        out.push_str("-- barrier epochs --\n");
        match cluster_epochs(&sigs, opts) {
            Some(clustering) => out.push_str(&render_clusters(&sigs, &clustering)),
            None => {
                let _ = writeln!(
                    out,
                    "{} epochs; no repetition within {} clusters at tolerance \
                     {} — `--strategy repr` would fall back to exact simulation",
                    sigs.len(),
                    opts.max_clusters,
                    opts.tolerance
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use extrap_time::DurationNs;
    use pcpp_rt_free_test_helpers::*;

    // Tiny local helpers (avoid a dev-dependency cycle with pcpp-rt).
    mod pcpp_rt_free_test_helpers {
        use crate::builder::ProgramTraceBuilder;
        use crate::event::{EventKind, ProgramTrace};
        use extrap_time::{BarrierId, DurationNs, ThreadId};

        /// One thread: [begin, 100ns compute, marker 1, 200ns compute,
        /// barrier, marker 2, 300ns compute, end].
        pub fn marked_program() -> ProgramTrace {
            let mut b = ProgramTraceBuilder::new(1);
            let t = ThreadId(0);
            b.emit(t, EventKind::ThreadBegin);
            b.advance(DurationNs(100));
            b.emit(t, EventKind::Marker { id: 1 });
            b.advance(DurationNs(200));
            b.emit(
                t,
                EventKind::BarrierEnter {
                    barrier: BarrierId(0),
                },
            );
            b.emit(
                t,
                EventKind::BarrierExit {
                    barrier: BarrierId(0),
                },
            );
            b.emit(t, EventKind::Marker { id: 2 });
            b.advance(DurationNs(300));
            b.emit(t, EventKind::ThreadEnd);
            b.finish()
        }
    }

    #[test]
    fn phases_split_at_markers() {
        let ts = crate::translate(&marked_program(), Default::default()).unwrap();
        let profiles = phase_profiles(&ts);
        assert_eq!(profiles.len(), 3);
        assert_eq!(profiles[&PRELUDE].compute, DurationNs(100));
        assert_eq!(profiles[&1].compute, DurationNs(200));
        assert_eq!(profiles[&1].barriers, 1);
        assert_eq!(profiles[&2].compute, DurationNs(300));
    }

    #[test]
    fn render_includes_each_phase() {
        let ts = crate::translate(&marked_program(), Default::default()).unwrap();
        let text = render(&phase_profiles(&ts));
        assert!(text.contains("prelude"));
        assert!(text.lines().count() >= 4);
    }

    /// `n_threads` threads, `epochs` barrier-delimited epochs whose
    /// compute alternates through `pattern` (period = pattern.len()).
    fn periodic_program(n_threads: usize, epochs: usize, pattern: &[u64]) -> crate::TraceSet {
        let mut p = crate::builder::PhaseProgram::new(n_threads);
        for e in 0..epochs {
            p.push_uniform_phase(DurationNs(pattern[e % pattern.len()]));
        }
        crate::translate(&p.record(), Default::default()).unwrap()
    }

    #[test]
    fn epoch_signatures_count_and_terminators() {
        let ts = periodic_program(2, 5, &[100]);
        let sigs = epoch_signatures(&ts);
        // PhaseProgram emits one barrier per phase, so 5 phases give 5
        // barriers and a (possibly empty) tail epoch.
        assert_eq!(sigs.len(), 6);
        assert!(sigs[..5]
            .iter()
            .all(|s| s.terminator == EpochTerminator::Barrier));
        assert_eq!(sigs[5].terminator, EpochTerminator::End);
        // Each interior epoch: 100ns compute on each of 2 threads.
        assert_eq!(sigs[0].compute, DurationNs(200));
    }

    #[test]
    fn periodic_trace_clusters_to_period() {
        let ts = periodic_program(2, 12, &[100, 900]);
        let sigs = epoch_signatures(&ts);
        let clustering = cluster_epochs(&sigs, &ClusterOptions::default()).unwrap();
        // Two alternating interior signatures plus the tail epoch.
        assert_eq!(clustering.clusters.len(), 3);
        let interior: u64 = clustering.clusters[..2].iter().map(|c| c.weight).sum();
        assert_eq!(interior, 12);
        assert_eq!(clustering.clusters[2].weight, 1);
        assert!(clustering.repetition() > 4.0);
    }

    #[test]
    fn clustering_is_deterministic() {
        let ts = periodic_program(4, 40, &[100, 900, 100, 500]);
        let sigs = epoch_signatures(&ts);
        let a = cluster_epochs(&sigs, &ClusterOptions::default()).unwrap();
        let b = cluster_epochs(&sigs, &ClusterOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn non_repeating_signatures_refuse_to_cluster() {
        // Strictly growing compute: every epoch is its own cluster, so
        // a small max_clusters bound must bail out.
        let mut rng = 7u64;
        let pattern: Vec<u64> = (0..20)
            .map(|i| 1_000 * (i + 1) + splitmix64(&mut rng) % 10)
            .collect();
        let ts = periodic_program(2, 20, &pattern);
        let sigs = epoch_signatures(&ts);
        let opts = ClusterOptions {
            max_clusters: 8,
            tolerance: 0.001,
        };
        assert!(cluster_epochs(&sigs, &opts).is_none());
    }

    #[test]
    fn terminator_mismatch_never_merges() {
        // All-identical compute: interior epochs form one cluster, the
        // tail epoch (End terminator) must still stand alone.
        let ts = periodic_program(2, 10, &[250]);
        let sigs = epoch_signatures(&ts);
        let clustering = cluster_epochs(&sigs, &ClusterOptions::default()).unwrap();
        assert_eq!(clustering.clusters.len(), 2);
        assert_eq!(clustering.clusters[0].weight, 10);
        assert_eq!(clustering.clusters[1].weight, 1);
    }

    #[test]
    fn render_clusters_mentions_weights() {
        let ts = periodic_program(2, 6, &[100]);
        let sigs = epoch_signatures(&ts);
        let clustering = cluster_epochs(&sigs, &ClusterOptions::default()).unwrap();
        let text = render_clusters(&sigs, &clustering);
        assert!(text.contains("clusters"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn splitmix64_is_stable() {
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn unmarked_trace_is_all_prelude() {
        let mut p = crate::builder::PhaseProgram::new(2);
        p.push_uniform_phase(DurationNs(500));
        let ts = crate::translate(&p.record(), Default::default()).unwrap();
        let profiles = phase_profiles(&ts);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[&PRELUDE].compute, DurationNs(1_000));
        assert_eq!(profiles[&PRELUDE].barriers, 2);
    }
}
