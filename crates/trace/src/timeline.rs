//! ASCII timeline (Gantt) rendering of per-thread traces — a quick-look
//! performance-debugging view of where each thread's time goes.
//!
//! Legend: `=` computing, `.` waiting inside a barrier, `|` barrier
//! entry, `r`/`w` remote read/write issue points, space after the
//! thread finished.

use crate::event::{EventKind, TraceSet};
use extrap_time::TimeNs;
use std::fmt::Write as _;

/// Per-bucket cell classification, in increasing display priority.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Cell {
    Done,
    Busy,
    BarrierWait,
    BarrierEdge,
    RemoteRead,
    RemoteWrite,
}

impl Cell {
    fn ch(self) -> char {
        match self {
            Cell::Done => ' ',
            Cell::Busy => '=',
            Cell::BarrierWait => '.',
            Cell::BarrierEdge => '|',
            Cell::RemoteRead => 'r',
            Cell::RemoteWrite => 'w',
        }
    }
}

/// Renders a trace set as a `width`-column timeline, one row per thread.
pub fn render(set: &TraceSet, width: usize) -> String {
    let width = width.clamp(10, 500);
    let span = set.makespan().as_ns().max(1);
    let bucket_of = |t: TimeNs| ((t.as_ns() as u128 * width as u128) / (span as u128 + 1)) as usize;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: {} threads over {:.3} ms ({} columns, {:.1} us/col)",
        set.n_threads(),
        set.makespan().as_ms(),
        width,
        span as f64 / 1_000.0 / width as f64
    );
    fn mark(cells: &mut [Cell], a: usize, b: usize, cell: Cell) {
        let hi = b.min(cells.len() - 1);
        for c in cells[a..=hi].iter_mut() {
            *c = (*c).max(cell);
        }
    }

    for thread in &set.threads {
        let mut cells = vec![Cell::Done; width];
        let mut cursor = TimeNs::ZERO;
        let mut barrier_entry: Option<TimeNs> = None;
        for rec in &thread.records {
            match rec.kind {
                EventKind::ThreadBegin => cursor = rec.time,
                EventKind::BarrierEnter { .. } => {
                    mark(
                        &mut cells,
                        bucket_of(cursor),
                        bucket_of(rec.time),
                        Cell::Busy,
                    );
                    barrier_entry = Some(rec.time);
                }
                EventKind::BarrierExit { .. } => {
                    if let Some(entry) = barrier_entry.take() {
                        mark(
                            &mut cells,
                            bucket_of(entry),
                            bucket_of(rec.time),
                            Cell::BarrierWait,
                        );
                        let eb = bucket_of(entry);
                        cells[eb] = cells[eb].max(Cell::BarrierEdge);
                    }
                    cursor = rec.time;
                }
                EventKind::RemoteRead { .. } => {
                    mark(
                        &mut cells,
                        bucket_of(cursor),
                        bucket_of(rec.time),
                        Cell::Busy,
                    );
                    let b = bucket_of(rec.time);
                    cells[b] = cells[b].max(Cell::RemoteRead);
                    cursor = rec.time;
                }
                EventKind::RemoteWrite { .. } => {
                    mark(
                        &mut cells,
                        bucket_of(cursor),
                        bucket_of(rec.time),
                        Cell::Busy,
                    );
                    let b = bucket_of(rec.time);
                    cells[b] = cells[b].max(Cell::RemoteWrite);
                    cursor = rec.time;
                }
                EventKind::ThreadEnd => {
                    mark(
                        &mut cells,
                        bucket_of(cursor),
                        bucket_of(rec.time),
                        Cell::Busy,
                    );
                    cursor = rec.time;
                }
                EventKind::Marker { .. } => {}
            }
        }
        let _ = write!(out, "{:>4} ", thread.thread.to_string());
        for c in cells {
            out.push(c.ch());
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "legend: '=' compute  '.' barrier wait  '|' barrier entry  'r'/'w' remote access"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PhaseAccess, PhaseProgram, PhaseWork};
    use crate::translate::translate;
    use extrap_time::{DurationNs, ElementId, ThreadId};

    fn sample() -> TraceSet {
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(100),
                accesses: vec![PhaseAccess {
                    after: DurationNs(50),
                    owner: ThreadId(1),
                    element: ElementId(0),
                    declared_bytes: 8,
                    actual_bytes: 8,
                    write: false,
                }],
            },
            PhaseWork {
                compute: DurationNs(400),
                accesses: vec![],
            },
        ]);
        translate(&p.record(), Default::default()).unwrap()
    }

    #[test]
    fn renders_one_row_per_thread() {
        let text = render(&sample(), 40);
        let rows: Vec<&str> = text.lines().collect();
        // header + 2 threads + legend
        assert_eq!(rows.len(), 4);
        assert!(rows[1].starts_with("  T0"));
        assert!(rows[2].starts_with("  T1"));
    }

    #[test]
    fn fast_thread_shows_barrier_wait() {
        let text = render(&sample(), 40);
        let t0 = text.lines().nth(1).unwrap();
        let t1 = text.lines().nth(2).unwrap();
        // Thread 0 finishes its 100ns and waits ~300ns at the barrier.
        assert!(t0.contains('.'), "t0 waits: {t0}");
        assert!(t0.contains('r'), "t0 issued a remote read: {t0}");
        // Thread 1 computes the whole time.
        assert!(!t1.contains('.'), "t1 never waits: {t1}");
    }

    #[test]
    fn width_is_clamped() {
        let text = render(&sample(), 3);
        let row = text.lines().nth(1).unwrap();
        assert!(row.len() >= 10, "clamped to at least 10 columns");
        let text = render(&sample(), 100_000);
        let row = text.lines().nth(1).unwrap();
        assert!(row.len() <= 510);
    }

    #[test]
    fn empty_set_renders_header_only() {
        let set = TraceSet { threads: vec![] };
        let text = render(&set, 40);
        assert!(text.contains("0 threads"));
    }
}
