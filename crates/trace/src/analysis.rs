//! Applicability analysis (§5 of the paper).
//!
//! Trace reuse is sound when "the order of a thread's measured events
//! \[is\] unaffected by the remote data actions of other threads".  pC++'s
//! owner-computes reads guarantee this; remote *writes* can break it: if
//! an element is remote-written and also accessed by another thread in
//! the same barrier epoch, the value observed — and potentially the
//! subsequent control flow — depends on execution timing, and the trace
//! may not transfer to a different environment.
//!
//! [`determinism_report`] flags exactly those element/epoch conflicts so
//! a user can tell whether extrapolation is trustworthy for their
//! program (or whether they are in the paper's "controlled execution"
//! middle ground).

use crate::event::{EventKind, TraceSet};
use extrap_time::{ElementId, ThreadId};
use std::collections::BTreeMap;

/// One potential timing-dependence: an element written remotely while
/// also accessed by other threads in the same barrier epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochConflict {
    /// Barrier epoch (number of barriers entered before the accesses).
    pub epoch: usize,
    /// The contested element.
    pub element: ElementId,
    /// Threads that remote-wrote the element in this epoch.
    pub writers: Vec<ThreadId>,
    /// Threads that remote-read the element in this epoch.
    pub readers: Vec<ThreadId>,
}

/// Summary of the §5 determinism analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeterminismReport {
    /// Conflicts found, ordered by (epoch, element).
    pub conflicts: Vec<EpochConflict>,
    /// Total remote writes seen (even conflict-free ones are worth
    /// knowing about: the trivially-extendable case of §5).
    pub remote_writes: usize,
}

impl DeterminismReport {
    /// True when the trace satisfies the strongest assumption (read-only
    /// remote accesses, or writes that never conflict within an epoch).
    pub fn is_deterministic(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Analyses a translated trace set for epoch-level write conflicts.
///
/// Conservative by construction: a conflict is reported whenever a
/// remote write to an element shares a barrier epoch with any other
/// thread's access to the same element (reads by the owner itself are
/// not traced and therefore cannot be checked — the paper's measurement
/// has the same blind spot).
pub fn determinism_report(set: &TraceSet) -> DeterminismReport {
    #[derive(Default)]
    struct Access {
        writers: Vec<ThreadId>,
        readers: Vec<ThreadId>,
    }
    let mut accesses: BTreeMap<(usize, ElementId), Access> = BTreeMap::new();
    let mut remote_writes = 0usize;

    for thread in &set.threads {
        let mut epoch = 0usize;
        for rec in &thread.records {
            match rec.kind {
                EventKind::BarrierEnter { .. } => epoch += 1,
                EventKind::RemoteRead { element, .. } => {
                    accesses
                        .entry((epoch, element))
                        .or_default()
                        .readers
                        .push(rec.thread);
                }
                EventKind::RemoteWrite { element, .. } => {
                    remote_writes += 1;
                    accesses
                        .entry((epoch, element))
                        .or_default()
                        .writers
                        .push(rec.thread);
                }
                _ => {}
            }
        }
    }

    let conflicts = accesses
        .into_iter()
        .filter_map(|((epoch, element), acc)| {
            if acc.writers.is_empty() {
                return None;
            }
            // Conflict: more than one distinct thread touches a written
            // element within the epoch.
            let mut participants: Vec<ThreadId> = acc
                .writers
                .iter()
                .chain(acc.readers.iter())
                .copied()
                .collect();
            participants.sort_unstable();
            participants.dedup();
            if participants.len() <= 1 {
                return None;
            }
            Some(EpochConflict {
                epoch,
                element,
                writers: acc.writers,
                readers: acc.readers,
            })
        })
        .collect();

    DeterminismReport {
        conflicts,
        remote_writes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PhaseAccess, PhaseProgram, PhaseWork};
    use crate::translate::translate;
    use extrap_time::DurationNs;

    fn access(owner: u32, element: u32, write: bool) -> PhaseAccess {
        PhaseAccess {
            after: DurationNs(10),
            owner: ThreadId(owner),
            element: ElementId(element),
            declared_bytes: 8,
            actual_bytes: 8,
            write,
        }
    }

    fn work(accesses: Vec<PhaseAccess>) -> PhaseWork {
        PhaseWork {
            compute: DurationNs(100),
            accesses,
        }
    }

    #[test]
    fn read_only_programs_are_deterministic() {
        let mut p = PhaseProgram::new(3);
        p.push_phase(vec![
            work(vec![access(1, 5, false)]),
            work(vec![access(2, 6, false)]),
            work(vec![access(0, 7, false)]),
        ]);
        let ts = translate(&p.record(), Default::default()).unwrap();
        let report = determinism_report(&ts);
        assert!(report.is_deterministic());
        assert_eq!(report.remote_writes, 0);
    }

    #[test]
    fn conflict_free_writes_are_accepted() {
        // Thread 0 writes element 5 (owned by thread 1); nobody else
        // touches it this epoch.
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![work(vec![access(1, 5, true)]), work(vec![])]);
        let ts = translate(&p.record(), Default::default()).unwrap();
        let report = determinism_report(&ts);
        assert!(report.is_deterministic());
        assert_eq!(report.remote_writes, 1);
    }

    #[test]
    fn write_read_conflict_in_same_epoch_is_flagged() {
        let mut p = PhaseProgram::new(3);
        p.push_phase(vec![
            work(vec![access(2, 9, true)]),  // thread 0 writes e9
            work(vec![access(2, 9, false)]), // thread 1 reads e9
            work(vec![]),
        ]);
        let ts = translate(&p.record(), Default::default()).unwrap();
        let report = determinism_report(&ts);
        assert!(!report.is_deterministic());
        assert_eq!(report.conflicts.len(), 1);
        let c = &report.conflicts[0];
        assert_eq!(c.epoch, 0);
        assert_eq!(c.element, ElementId(9));
        assert_eq!(c.writers, vec![ThreadId(0)]);
        assert_eq!(c.readers, vec![ThreadId(1)]);
    }

    #[test]
    fn barrier_separated_accesses_do_not_conflict() {
        let mut p = PhaseProgram::new(2);
        // Epoch 0: thread 0 writes e3.  Epoch 1: thread 1 reads e3.
        p.push_phase(vec![work(vec![access(1, 3, true)]), work(vec![])]);
        p.push_phase(vec![work(vec![]), work(vec![access(1, 3, false)])]);
        let ts = translate(&p.record(), Default::default()).unwrap();
        let report = determinism_report(&ts);
        assert!(report.is_deterministic(), "{:?}", report.conflicts);
        assert_eq!(report.remote_writes, 1);
    }

    #[test]
    fn write_write_conflict_is_flagged() {
        let mut p = PhaseProgram::new(3);
        p.push_phase(vec![
            work(vec![access(2, 4, true)]),
            work(vec![access(2, 4, true)]),
            work(vec![]),
        ]);
        let ts = translate(&p.record(), Default::default()).unwrap();
        let report = determinism_report(&ts);
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(report.conflicts[0].writers.len(), 2);
    }
}
