//! Trace events and trace containers.
//!
//! The instrumented runtime records only the *high-level* events the paper
//! identifies as sufficient for extrapolation: barrier entry/exit and
//! remote element accesses, plus begin/end markers.  The time *between*
//! events carries the computation cost and is what the processor model
//! scales.

use extrap_time::{BarrierId, ElementId, ThreadId, TimeNs};

/// The kind of a traced event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum EventKind {
    /// The thread started executing user code.
    ThreadBegin,
    /// The thread finished; its timestamp is the thread's completion time.
    ThreadEnd,
    /// The thread arrived at global barrier `barrier`.
    BarrierEnter {
        /// Program-order barrier number (identical across threads in the
        /// data-parallel model).
        barrier: BarrierId,
    },
    /// The thread left global barrier `barrier`.
    BarrierExit {
        /// Program-order barrier number.
        barrier: BarrierId,
    },
    /// The thread read a collection element it does not own.
    RemoteRead {
        /// The thread that owns the element ("owner computes").
        owner: ThreadId,
        /// Global element index.
        element: ElementId,
        /// Transfer size the *compiler* declared for the access — the whole
        /// collection element (the measurement abstraction of §4.1).
        declared_bytes: u32,
        /// Bytes the access actually needs (what an optimizing compiler
        /// would request).  `SizeMode` in the simulator selects which of
        /// the two sizes drives the communication model.
        actual_bytes: u32,
    },
    /// The thread wrote a remote collection element (one-way message; the
    /// "trivial extension" of §5).
    RemoteWrite {
        /// The owning thread.
        owner: ThreadId,
        /// Global element index.
        element: ElementId,
        /// Declared (whole-element) transfer size.
        declared_bytes: u32,
        /// Actual bytes written.
        actual_bytes: u32,
    },
    /// A user-defined phase marker (for diagnosis; ignored by the models).
    Marker {
        /// User-chosen marker id.
        id: u32,
    },
}

impl EventKind {
    /// True for barrier entry/exit — the synchronization events whose
    /// timestamps the translation algorithm treats specially.
    #[inline]
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            EventKind::BarrierEnter { .. } | EventKind::BarrierExit { .. }
        )
    }

    /// True for remote element accesses (read or write).
    #[inline]
    pub fn is_remote(&self) -> bool {
        matches!(
            self,
            EventKind::RemoteRead { .. } | EventKind::RemoteWrite { .. }
        )
    }

    /// A short stable tag used by the text format and statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::ThreadBegin => "begin",
            EventKind::ThreadEnd => "end",
            EventKind::BarrierEnter { .. } => "barrier-enter",
            EventKind::BarrierExit { .. } => "barrier-exit",
            EventKind::RemoteRead { .. } => "remote-read",
            EventKind::RemoteWrite { .. } => "remote-write",
            EventKind::Marker { .. } => "marker",
        }
    }
}

/// One timestamped event from one thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Event timestamp (global virtual clock in the 1-processor run;
    /// idealized per-thread time after translation).
    pub time: TimeNs,
    /// The thread that generated the event.
    pub thread: ThreadId,
    /// What happened.
    pub kind: EventKind,
}

/// The trace of an *n*-thread program measured on **one** processor: a
/// single, globally time-ordered event stream (the output of the
/// instrumented non-preemptive runtime).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramTrace {
    /// Number of threads in the traced program.
    pub n_threads: usize,
    /// All events, ordered by (time, insertion order).
    pub records: Vec<TraceRecord>,
}

impl ProgramTrace {
    /// Creates an empty program trace for `n_threads` threads.
    pub fn new(n_threads: usize) -> ProgramTrace {
        assert!(n_threads > 0, "a program trace needs at least one thread");
        ProgramTrace {
            n_threads,
            records: Vec::new(),
        }
    }

    /// Splits the global stream into per-thread streams, preserving order.
    pub fn split_by_thread(&self) -> Vec<Vec<TraceRecord>> {
        let mut per: Vec<Vec<TraceRecord>> = vec![Vec::new(); self.n_threads];
        for r in &self.records {
            per[r.thread.index()].push(*r);
        }
        per
    }

    /// Validates global ordering and thread-id ranges.
    pub fn validate(&self) -> Result<(), crate::TraceError> {
        let mut prev = TimeNs::ZERO;
        for (i, r) in self.records.iter().enumerate() {
            if r.thread.index() >= self.n_threads {
                return Err(crate::TraceError::BadThread {
                    record: i,
                    thread: r.thread,
                    n_threads: self.n_threads,
                });
            }
            if r.time < prev {
                return Err(crate::TraceError::TimeRegression { record: i });
            }
            prev = r.time;
        }
        Ok(())
    }
}

/// One thread's event stream with (translated) per-thread timestamps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The thread these events belong to.
    pub thread: ThreadId,
    /// Events in program order; timestamps are non-decreasing.
    pub records: Vec<TraceRecord>,
}

impl ThreadTrace {
    /// The timestamp of the final event (the thread's completion time), or
    /// zero for an empty trace.
    pub fn end_time(&self) -> TimeNs {
        self.records.last().map(|r| r.time).unwrap_or(TimeNs::ZERO)
    }

    /// The barrier ids this thread passes, in order.
    pub fn barrier_sequence(&self) -> Vec<BarrierId> {
        self.records
            .iter()
            .filter_map(|r| match r.kind {
                EventKind::BarrierEnter { barrier } => Some(barrier),
                _ => None,
            })
            .collect()
    }
}

/// A set of per-thread traces — the output of translation and the input to
/// the extrapolation simulators ("the resulting set of trace files look as
/// if they were obtained from a n-thread, n-processor run").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSet {
    /// One trace per thread, indexed by thread id.
    pub threads: Vec<ThreadTrace>,
}

impl TraceSet {
    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Approximate heap footprint of this trace set in bytes — the
    /// accounting probe cache-eviction budgets are charged against.
    /// Counts the record buffers (by capacity, since that is what is
    /// actually resident) plus the per-thread headers.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<TraceSet>()
            + self
                .threads
                .iter()
                .map(|t| {
                    std::mem::size_of::<ThreadTrace>()
                        + t.records.capacity() * std::mem::size_of::<TraceRecord>()
                })
                .sum::<usize>()
    }

    /// The latest completion time across all threads (the program's
    /// idealized parallel execution time).
    pub fn makespan(&self) -> TimeNs {
        self.threads
            .iter()
            .map(|t| t.end_time())
            .max()
            .unwrap_or(TimeNs::ZERO)
    }

    /// Validates the data-parallel determinism assumption the paper's
    /// extrapolation relies on: every thread passes the same barrier
    /// sequence, per-thread timestamps are monotone, and thread ids match
    /// positions.
    pub fn validate(&self) -> Result<(), crate::TraceError> {
        let reference = self
            .threads
            .first()
            .map(|t| t.barrier_sequence())
            .unwrap_or_default();
        for (i, t) in self.threads.iter().enumerate() {
            if t.thread.index() != i {
                return Err(crate::TraceError::MisplacedThread {
                    position: i,
                    thread: t.thread,
                });
            }
            let mut prev = TimeNs::ZERO;
            for (j, r) in t.records.iter().enumerate() {
                if r.time < prev {
                    return Err(crate::TraceError::ThreadTimeRegression {
                        thread: t.thread,
                        record: j,
                    });
                }
                prev = r.time;
                if r.thread != t.thread {
                    return Err(crate::TraceError::MisplacedThread {
                        position: i,
                        thread: r.thread,
                    });
                }
            }
            if t.barrier_sequence() != reference {
                return Err(crate::TraceError::BarrierMismatch { thread: t.thread });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: u64, thread: u32, kind: EventKind) -> TraceRecord {
        TraceRecord {
            time: TimeNs(time),
            thread: ThreadId(thread),
            kind,
        }
    }

    #[test]
    fn kind_classification() {
        assert!(EventKind::BarrierEnter {
            barrier: BarrierId(0)
        }
        .is_sync());
        assert!(EventKind::BarrierExit {
            barrier: BarrierId(0)
        }
        .is_sync());
        assert!(!EventKind::ThreadBegin.is_sync());
        assert!(EventKind::RemoteRead {
            owner: ThreadId(1),
            element: ElementId(0),
            declared_bytes: 8,
            actual_bytes: 8
        }
        .is_remote());
        assert!(!EventKind::Marker { id: 1 }.is_remote());
    }

    #[test]
    fn split_by_thread_partitions() {
        let mut pt = ProgramTrace::new(2);
        pt.records.push(rec(0, 0, EventKind::ThreadBegin));
        pt.records.push(rec(1, 1, EventKind::ThreadBegin));
        pt.records.push(rec(2, 0, EventKind::ThreadEnd));
        pt.records.push(rec(3, 1, EventKind::ThreadEnd));
        let per = pt.split_by_thread();
        assert_eq!(per[0].len(), 2);
        assert_eq!(per[1].len(), 2);
        assert!(per[0].iter().all(|r| r.thread == ThreadId(0)));
    }

    #[test]
    fn program_trace_validation_catches_regression() {
        let mut pt = ProgramTrace::new(1);
        pt.records.push(rec(5, 0, EventKind::ThreadBegin));
        pt.records.push(rec(3, 0, EventKind::ThreadEnd));
        assert!(matches!(
            pt.validate(),
            Err(crate::TraceError::TimeRegression { record: 1 })
        ));
    }

    #[test]
    fn program_trace_validation_catches_bad_thread() {
        let mut pt = ProgramTrace::new(1);
        pt.records.push(rec(0, 9, EventKind::ThreadBegin));
        assert!(matches!(
            pt.validate(),
            Err(crate::TraceError::BadThread { .. })
        ));
    }

    #[test]
    fn trace_set_makespan_is_latest_end() {
        let ts = TraceSet {
            threads: vec![
                ThreadTrace {
                    thread: ThreadId(0),
                    records: vec![
                        rec(0, 0, EventKind::ThreadBegin),
                        rec(10, 0, EventKind::ThreadEnd),
                    ],
                },
                ThreadTrace {
                    thread: ThreadId(1),
                    records: vec![
                        rec(0, 1, EventKind::ThreadBegin),
                        rec(25, 1, EventKind::ThreadEnd),
                    ],
                },
            ],
        };
        assert_eq!(ts.makespan(), TimeNs(25));
        assert!(ts.validate().is_ok());
    }

    #[test]
    fn trace_set_validation_catches_barrier_mismatch() {
        let enter = |b: u32, t: u32, tm: u64| {
            rec(
                tm,
                t,
                EventKind::BarrierEnter {
                    barrier: BarrierId(b),
                },
            )
        };
        let ts = TraceSet {
            threads: vec![
                ThreadTrace {
                    thread: ThreadId(0),
                    records: vec![enter(0, 0, 1)],
                },
                ThreadTrace {
                    thread: ThreadId(1),
                    records: vec![enter(1, 1, 1)],
                },
            ],
        };
        assert!(matches!(
            ts.validate(),
            Err(crate::TraceError::BarrierMismatch { .. })
        ));
    }

    #[test]
    fn empty_trace_set_is_valid() {
        let ts = TraceSet { threads: vec![] };
        assert!(ts.validate().is_ok());
        assert_eq!(ts.makespan(), TimeNs::ZERO);
    }
}
