//! Reading traces from streams and files.
//!
//! Every reader comes in three flavours:
//!
//! * the plain form (`read_program`, …) — decodes and enforces the
//!   structural invariants ([`ProgramTrace::validate`] /
//!   [`TraceSet::validate`]);
//! * a `_raw` form — decodes without invariant checks, for diagnostic
//!   tools (`extrap-lint`) that want to inspect a corrupted trace in
//!   full instead of failing at the first violation;
//! * a `_with` form — the plain form plus an **opt-in validate-on-load
//!   hook**: a caller-supplied check (typically a lint pass) runs on the
//!   decoded value and its rejection surfaces as
//!   [`TraceError::Validation`], so a bad trace fails fast at the I/O
//!   boundary instead of producing garbage downstream.

use crate::error::TraceError;
use crate::event::{ProgramTrace, TraceSet};
use crate::stream::{ProgramStream, ReadSource, SetStream};
use std::io::Read;
use std::path::Path;

/// Reads a program trace from any `Read` source.
pub fn read_program(r: &mut impl Read) -> Result<ProgramTrace, TraceError> {
    let trace = read_program_raw(r)?;
    trace.validate()?;
    Ok(trace)
}

/// Reads a program trace from a file.
///
/// All failure modes — open, decode, invariant violations — carry the
/// file path in the error ([`TraceError::InFile`]).
pub fn read_program_file(path: impl AsRef<Path>) -> Result<ProgramTrace, TraceError> {
    let path = path.as_ref();
    let trace = read_program_file_raw(path)?;
    trace.validate().map_err(|e| e.in_file(path))?;
    Ok(trace)
}

/// Reads a program trace without enforcing structural invariants.
pub fn read_program_raw(r: &mut impl Read) -> Result<ProgramTrace, TraceError> {
    ProgramStream::new(ReadSource(r))?.read_to_end()
}

/// Reads a program trace from a file without enforcing structural
/// invariants.  The file is consumed through the chunked
/// [`ProgramStream`], so peak memory is one refill window plus the
/// decoded records rather than two copies of the whole file.
pub fn read_program_file_raw(path: impl AsRef<Path>) -> Result<ProgramTrace, TraceError> {
    ProgramStream::open(path)?.read_to_end()
}

/// Reads a program trace and applies a validate-on-load hook.
///
/// The hook runs after decoding and the built-in invariant checks; a
/// rejection (`Err(detail)`) surfaces as [`TraceError::Validation`].
pub fn read_program_with(
    r: &mut impl Read,
    check: impl FnOnce(&ProgramTrace) -> Result<(), String>,
) -> Result<ProgramTrace, TraceError> {
    let trace = read_program(r)?;
    check(&trace).map_err(|detail| TraceError::Validation { detail })?;
    Ok(trace)
}

/// Reads a program trace from a file and applies a validate-on-load hook.
pub fn read_program_file_with(
    path: impl AsRef<Path>,
    check: impl FnOnce(&ProgramTrace) -> Result<(), String>,
) -> Result<ProgramTrace, TraceError> {
    let path = path.as_ref();
    let trace = read_program_file(path)?;
    check(&trace).map_err(|detail| TraceError::Validation { detail }.in_file(path))?;
    Ok(trace)
}

/// Reads a translated trace set from any `Read` source.
pub fn read_set(r: &mut impl Read) -> Result<TraceSet, TraceError> {
    let set = read_set_raw(r)?;
    set.validate()?;
    Ok(set)
}

/// Reads a translated trace set from a file.
///
/// All failure modes carry the file path (see [`read_program_file`]).
pub fn read_set_file(path: impl AsRef<Path>) -> Result<TraceSet, TraceError> {
    let path = path.as_ref();
    let set = read_set_file_raw(path)?;
    set.validate().map_err(|e| e.in_file(path))?;
    Ok(set)
}

/// Reads a trace set without enforcing structural invariants.
pub fn read_set_raw(r: &mut impl Read) -> Result<TraceSet, TraceError> {
    SetStream::new(ReadSource(r))?.read_to_end()
}

/// Reads a trace set from a file without enforcing structural
/// invariants (chunked, like [`read_program_file_raw`]).
pub fn read_set_file_raw(path: impl AsRef<Path>) -> Result<TraceSet, TraceError> {
    SetStream::open(path)?.read_to_end()
}

/// Reads a trace set and applies a validate-on-load hook (see
/// [`read_program_with`]).
pub fn read_set_with(
    r: &mut impl Read,
    check: impl FnOnce(&TraceSet) -> Result<(), String>,
) -> Result<TraceSet, TraceError> {
    let set = read_set(r)?;
    check(&set).map_err(|detail| TraceError::Validation { detail })?;
    Ok(set)
}

/// Reads a trace set from a file and applies a validate-on-load hook.
pub fn read_set_file_with(
    path: impl AsRef<Path>,
    check: impl FnOnce(&TraceSet) -> Result<(), String>,
) -> Result<TraceSet, TraceError> {
    let path = path.as_ref();
    let set = read_set_file(path)?;
    check(&set).map_err(|detail| TraceError::Validation { detail }.in_file(path))?;
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PhaseProgram;
    use crate::event::{EventKind, TraceRecord};
    use crate::format;
    use extrap_time::{DurationNs, ThreadId, TimeNs};

    fn sample_bytes() -> Vec<u8> {
        let mut p = PhaseProgram::new(2);
        p.push_uniform_phase(DurationNs(100));
        format::encode_program(&p.record())
    }

    #[test]
    fn missing_file_is_io_error_with_path() {
        let err = read_program_file("/nonexistent/path/trace.xtrp").unwrap_err();
        assert!(
            matches!(err, TraceError::InFile { ref source, .. } if matches!(**source, TraceError::Io(_)))
        );
        assert!(err.to_string().contains("/nonexistent/path/trace.xtrp"));
    }

    #[test]
    fn file_validate_errors_carry_the_path() {
        let mut pt = crate::event::ProgramTrace::new(1);
        let rec = |t: u64, kind| TraceRecord {
            time: TimeNs(t),
            thread: ThreadId(0),
            kind,
        };
        pt.records.push(rec(5, EventKind::ThreadBegin));
        pt.records.push(rec(3, EventKind::ThreadEnd));
        let dir = std::env::temp_dir().join(format!("extrap-reader-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("regress.xtrp");
        std::fs::write(&path, format::encode_program(&pt)).unwrap();
        let err = read_program_file(&path).unwrap_err();
        assert!(err.to_string().contains("regress.xtrp"));
        assert!(err.to_string().contains("timestamp regression"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_stream_is_format_error() {
        let err = read_program(&mut &b""[..]).unwrap_err();
        assert!(matches!(err, TraceError::Format { .. }));
    }

    #[test]
    fn validate_hook_accepts_and_rejects() {
        let bytes = sample_bytes();
        let ok = read_program_with(&mut &bytes[..], |_| Ok(()));
        assert!(ok.is_ok());
        let err = read_program_with(&mut &bytes[..], |_| Err("nope".to_string())).unwrap_err();
        assert!(matches!(err, TraceError::Validation { ref detail } if detail == "nope"));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn raw_read_accepts_invariant_violations() {
        // A trace with a global timestamp regression: the strict reader
        // rejects it, the raw reader hands it over for diagnosis.
        let mut pt = crate::event::ProgramTrace::new(1);
        let rec = |t: u64, kind| TraceRecord {
            time: TimeNs(t),
            thread: ThreadId(0),
            kind,
        };
        pt.records.push(rec(5, EventKind::ThreadBegin));
        pt.records.push(rec(3, EventKind::ThreadEnd));
        let bytes = format::encode_program(&pt);
        assert!(matches!(
            read_program(&mut &bytes[..]),
            Err(TraceError::TimeRegression { .. })
        ));
        let raw = read_program_raw(&mut &bytes[..]).unwrap();
        assert_eq!(raw.records.len(), 2);
    }
}
