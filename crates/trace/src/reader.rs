//! Reading traces from streams and files.

use crate::error::TraceError;
use crate::event::{ProgramTrace, TraceSet};
use crate::format;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Reads a program trace from any `Read` source.
pub fn read_program(r: &mut impl Read) -> Result<ProgramTrace, TraceError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    format::decode_program(&data)
}

/// Reads a program trace from a file.
pub fn read_program_file(path: impl AsRef<Path>) -> Result<ProgramTrace, TraceError> {
    read_program(&mut BufReader::new(File::open(path)?))
}

/// Reads a translated trace set from any `Read` source.
pub fn read_set(r: &mut impl Read) -> Result<TraceSet, TraceError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    format::decode_set(&data)
}

/// Reads a translated trace set from a file.
pub fn read_set_file(path: impl AsRef<Path>) -> Result<TraceSet, TraceError> {
    read_set(&mut BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_file_is_io_error() {
        let err = read_program_file("/nonexistent/path/trace.xtrp").unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn empty_stream_is_format_error() {
        let err = read_program(&mut &b""[..]).unwrap_err();
        assert!(matches!(err, TraceError::Format { .. }));
    }
}
