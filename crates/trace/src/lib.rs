#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! High-level event tracing for ExtraP-rs.
//!
//! This crate implements the measurement side of the paper: the event
//! vocabulary recorded by the instrumented pC++-style runtime (barrier
//! entry/exit, remote element accesses — §3.2), the program/thread trace
//! containers, a compact binary trace-file format plus a human-readable
//! text form, the **trace translation algorithm** that turns the
//! *n*-thread / 1-processor trace into *n* idealized per-thread traces,
//! and trace statistics used for performance diagnosis.

pub mod analysis;
pub mod builder;
pub mod bytesio;
pub mod error;
pub mod event;
pub mod format;
pub mod phases;
pub mod reader;
pub mod stats;
pub mod stream;
pub mod text;
pub mod timeline;
pub mod translate;
pub mod writer;

pub use analysis::{determinism_report, DeterminismReport, EpochConflict};
pub use builder::{PhaseAccess, PhaseProgram, PhaseWork, ProgramTraceBuilder};
pub use error::TraceError;
pub use event::{EventKind, TraceRecord};
pub use event::{ProgramTrace, ThreadTrace, TraceSet};
pub use phases::{
    cluster_epochs, epoch_signatures, phase_profiles, render_clusters, render_stats_report,
    splitmix64, ClusterOptions, EpochCluster, EpochClustering, EpochSignature, EpochTerminator,
    PhaseProfile,
};
pub use stats::{ThreadStats, TraceStats};
pub use stream::{
    sniff_kind, ChunkSource, FileSource, ProgramStream, ReadSource, SetChunk, SetStream,
    SliceSource, SpillSink, StreamArena, TraceKind,
};
pub use translate::{
    translate, translate_stream, translate_stream_to_set, EpochTranslator, TranslateOptions,
    TranslateSink, TranslateStats,
};
