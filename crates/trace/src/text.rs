//! Human-readable text form of traces (one event per line), parseable back.
//!
//! Example:
//!
//! ```text
//! # extrap program trace v1 threads=2
//! 0 T0 begin
//! 1000 T0 barrier-enter B0
//! 1200 T0 remote-read owner=T1 elem=E7 declared=1024 actual=8
//! ```

use crate::error::TraceError;
use crate::event::{EventKind, ProgramTrace, TraceRecord};
use extrap_time::{BarrierId, ElementId, ThreadId, TimeNs};
use std::fmt::Write as _;

/// Renders a program trace as text.
pub fn program_to_text(trace: &ProgramTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# extrap program trace v1 threads={}", trace.n_threads);
    for r in &trace.records {
        let _ = writeln!(out, "{}", record_to_line(r));
    }
    out
}

/// Renders one record as a line (no trailing newline).
pub fn record_to_line(r: &TraceRecord) -> String {
    let head = format!("{} {}", r.time.as_ns(), r.thread);
    match r.kind {
        EventKind::ThreadBegin => format!("{head} begin"),
        EventKind::ThreadEnd => format!("{head} end"),
        EventKind::BarrierEnter { barrier } => format!("{head} barrier-enter {barrier}"),
        EventKind::BarrierExit { barrier } => format!("{head} barrier-exit {barrier}"),
        EventKind::RemoteRead {
            owner,
            element,
            declared_bytes,
            actual_bytes,
        } => format!(
            "{head} remote-read owner={owner} elem={element} declared={declared_bytes} actual={actual_bytes}"
        ),
        EventKind::RemoteWrite {
            owner,
            element,
            declared_bytes,
            actual_bytes,
        } => format!(
            "{head} remote-write owner={owner} elem={element} declared={declared_bytes} actual={actual_bytes}"
        ),
        EventKind::Marker { id } => format!("{head} marker {id}"),
    }
}

/// Parses the text form back into a program trace.
///
/// # Errors
/// Returns a format error for any malformed line.
pub fn program_from_text(text: &str) -> Result<ProgramTrace, TraceError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| malformed("empty input"))?;
    let n_threads = header
        .strip_prefix("# extrap program trace v1 threads=")
        .and_then(|s| s.trim().parse::<usize>().ok())
        .ok_or_else(|| malformed(&format!("bad header: {header:?}")))?;
    let mut records = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        records
            .push(parse_line(line).map_err(|e| malformed(&format!("line {}: {e}", lineno + 2)))?);
    }
    let pt = ProgramTrace { n_threads, records };
    pt.validate()?;
    Ok(pt)
}

fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let mut parts = line.split_whitespace();
    let time = parts
        .next()
        .ok_or("missing timestamp")?
        .parse::<u64>()
        .map_err(|e| format!("bad timestamp: {e}"))?;
    let thread = parse_id(parts.next().ok_or("missing thread")?, 'T')?;
    let tag = parts.next().ok_or("missing event tag")?;
    let kind = match tag {
        "begin" => EventKind::ThreadBegin,
        "end" => EventKind::ThreadEnd,
        "barrier-enter" | "barrier-exit" => {
            let b = parse_id(parts.next().ok_or("missing barrier id")?, 'B')?;
            if tag == "barrier-enter" {
                EventKind::BarrierEnter {
                    barrier: BarrierId(b),
                }
            } else {
                EventKind::BarrierExit {
                    barrier: BarrierId(b),
                }
            }
        }
        "remote-read" | "remote-write" => {
            let owner = ThreadId(parse_kv(parts.next(), "owner", |v| parse_id(v, 'T'))?);
            let element = ElementId(parse_kv(parts.next(), "elem", |v| parse_id(v, 'E'))?);
            let declared_bytes = parse_kv(parts.next(), "declared", parse_u32)?;
            let actual_bytes = parse_kv(parts.next(), "actual", parse_u32)?;
            if tag == "remote-read" {
                EventKind::RemoteRead {
                    owner,
                    element,
                    declared_bytes,
                    actual_bytes,
                }
            } else {
                EventKind::RemoteWrite {
                    owner,
                    element,
                    declared_bytes,
                    actual_bytes,
                }
            }
        }
        "marker" => EventKind::Marker {
            id: parse_u32(parts.next().ok_or("missing marker id")?)?,
        },
        other => return Err(format!("unknown event tag {other:?}")),
    };
    if parts.next().is_some() {
        return Err("trailing tokens".into());
    }
    Ok(TraceRecord {
        time: TimeNs(time),
        thread: ThreadId(thread),
        kind,
    })
}

fn parse_id(token: &str, prefix: char) -> Result<u32, String> {
    token
        .strip_prefix(prefix)
        .and_then(|s| s.parse::<u32>().ok())
        .ok_or_else(|| format!("expected {prefix}<n>, got {token:?}"))
}

fn parse_u32(token: &str) -> Result<u32, String> {
    token
        .parse::<u32>()
        .map_err(|e| format!("bad integer {token:?}: {e}"))
}

fn parse_kv<T>(
    token: Option<&str>,
    key: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<T, String> {
    let token = token.ok_or_else(|| format!("missing {key}="))?;
    let value = token
        .strip_prefix(key)
        .and_then(|s| s.strip_prefix('='))
        .ok_or_else(|| format!("expected {key}=<v>, got {token:?}"))?;
    parse(value)
}

fn malformed(detail: &str) -> TraceError {
    TraceError::Format {
        detail: detail.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{PhaseAccess, PhaseProgram, PhaseWork};
    use extrap_time::DurationNs;

    fn sample() -> ProgramTrace {
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(400),
                accesses: vec![PhaseAccess {
                    after: DurationNs(100),
                    owner: ThreadId(1),
                    element: ElementId(7),
                    declared_bytes: 1024,
                    actual_bytes: 8,
                    write: false,
                }],
            },
            PhaseWork {
                compute: DurationNs(300),
                accesses: vec![PhaseAccess {
                    after: DurationNs(50),
                    owner: ThreadId(0),
                    element: ElementId(2),
                    declared_bytes: 64,
                    actual_bytes: 64,
                    write: true,
                }],
            },
        ]);
        p.record()
    }

    #[test]
    fn text_round_trip() {
        let pt = sample();
        let text = program_to_text(&pt);
        let back = program_from_text(&text).unwrap();
        assert_eq!(pt, back);
    }

    #[test]
    fn text_is_line_per_event() {
        let pt = sample();
        let text = program_to_text(&pt);
        assert_eq!(text.lines().count(), 1 + pt.records.len());
        assert!(text.contains("remote-read owner=T1 elem=E7 declared=1024 actual=8"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# extrap program trace v1 threads=1\n\n# comment\n0 T0 begin\n5 T0 end\n";
        let pt = program_from_text(text).unwrap();
        assert_eq!(pt.records.len(), 2);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(program_from_text("nope\n").is_err());
        assert!(program_from_text("").is_err());
    }

    #[test]
    fn bad_lines_rejected() {
        let cases = [
            "0 T0 frobnicate",
            "x T0 begin",
            "0 Q0 begin",
            "0 T0 barrier-enter",
            "0 T0 remote-read owner=T1 elem=E2 declared=4",
            "0 T0 begin extra",
        ];
        for case in cases {
            let text = format!("# extrap program trace v1 threads=1\n{case}\n");
            assert!(program_from_text(&text).is_err(), "accepted {case:?}");
        }
    }
}
