//! Chunked, bounded-memory trace ingestion.
//!
//! The slurp-based readers in [`crate::reader`] materialize the whole
//! file before decoding — fine for test fixtures, hostile to the
//! paper-scale case where one `(bench, n)` key is tens of megabytes.
//! This module reads trace files **incrementally**: a [`ChunkSource`]
//! feeds bytes into a pooled [`StreamArena`], and [`ProgramStream`] /
//! [`SetStream`] decode them into bounded record chunks that callers
//! consume one at a time.  Peak memory is `O(window + chunk)`,
//! independent of file size.
//!
//! Like [`crate::format::decode_program_raw`], the streams are **raw**:
//! they enforce the structural grammar (magic, version, record framing,
//! no trailing bytes) but none of the semantic invariants, so a
//! corrupted trace can be inspected in full by diagnostic tools
//! (`extrap-lint`) instead of failing at the first violation.  The
//! structural error messages are byte-identical to the slurp decoders'
//! because both run the exact same `format` primitives.

use crate::bytesio::Buf;
use crate::error::TraceError;
use crate::event::{ProgramTrace, ThreadTrace, TraceRecord, TraceSet};
use crate::format;
use crate::translate::TranslateSink;
use extrap_time::ThreadId;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::mem::size_of;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Attaches a file path to errors of streams opened from disk; in-memory
/// streams (`context == None`) keep byte-identical slurp-decoder messages.
fn in_ctx(context: &Option<PathBuf>, e: TraceError) -> TraceError {
    match context {
        Some(path) => e.in_file(path),
        None => e,
    }
}

/// Default refill window: how many bytes one `read` asks the source for.
pub const DEFAULT_WINDOW_BYTES: usize = 64 * 1024;
/// Default number of decoded records handed out per chunk.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;
/// Upper bound on the encoded size of one record (header + the largest
/// payload, a remote access: 8 + 4 + 1 + 4·4 bytes).
pub const MAX_RECORD_BYTES: usize = 29;

/// A source of raw trace bytes read in forward-only chunks.
///
/// Implementations fill as much of `buf` as they can and return the
/// number of bytes written; `Ok(0)` means end of input.
pub trait ChunkSource {
    /// Reads more bytes into `buf`, returning how many were written.
    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize>;
}

/// A [`ChunkSource`] over a file, using positioned reads so the stream
/// never owns more than its refill window of the file at once.
#[derive(Debug)]
pub struct FileSource {
    file: File,
    offset: u64,
}

impl FileSource {
    /// Opens `path` for streaming.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileSource> {
        Ok(FileSource::new(File::open(path)?))
    }

    /// Wraps an already-open file (reads start at offset 0).
    pub fn new(file: File) -> FileSource {
        FileSource { file, offset: 0 }
    }
}

impl ChunkSource for FileSource {
    #[cfg(unix)]
    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        loop {
            match self.file.read_at(buf, self.offset) {
                Ok(n) => {
                    self.offset += n as u64;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    #[cfg(not(unix))]
    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::{Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(self.offset))?;
        loop {
            match self.file.read(buf) {
                Ok(n) => {
                    self.offset += n as u64;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// A [`ChunkSource`] over any [`Read`] impl.
#[derive(Debug)]
pub struct ReadSource<R>(pub R);

impl<R: Read> ChunkSource for ReadSource<R> {
    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.0.read(buf) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }
}

/// A [`ChunkSource`] over an in-memory byte slice.
#[derive(Debug)]
pub struct SliceSource<'a>(pub &'a [u8]);

impl ChunkSource for SliceSource<'_> {
    fn read_more(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.0.len());
        buf[..n].copy_from_slice(&self.0[..n]);
        self.0 = &self.0[n..];
        Ok(n)
    }
}

/// Reusable buffers for one stream: the raw byte window and the decoded
/// record chunk.  Pool one per worker and recycle it across files (via
/// [`ProgramStream::into_arena`] / [`SetStream::into_arena`]) so a
/// directory-wide lint run allocates its windows once.
#[derive(Debug, Default)]
pub struct StreamArena {
    bytes: Vec<u8>,
    records: Vec<TraceRecord>,
}

impl StreamArena {
    /// A fresh, empty arena.
    pub fn new() -> StreamArena {
        StreamArena::default()
    }
}

/// The sliding byte window between a [`ChunkSource`] and the decoder.
struct ByteFeed<S> {
    src: S,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    eof: bool,
    window: usize,
}

impl<S: ChunkSource> ByteFeed<S> {
    fn new(src: S, mut buf: Vec<u8>, window: usize) -> ByteFeed<S> {
        buf.clear();
        ByteFeed {
            src,
            buf,
            pos: 0,
            len: 0,
            eof: false,
            window: window.max(MAX_RECORD_BYTES),
        }
    }

    /// Refills until at least `want` unread bytes are buffered or the
    /// source is exhausted (after which fewer may remain — exactly the
    /// file's final suffix, so truncation errors match the slurp path).
    fn ensure(&mut self, want: usize) -> Result<(), TraceError> {
        while self.len - self.pos < want && !self.eof {
            if self.pos > 0 {
                self.buf.copy_within(self.pos..self.len, 0);
                self.len -= self.pos;
                self.pos = 0;
            }
            let target = self.len + self.window.max(want);
            if self.buf.len() < target {
                self.buf.resize(target, 0);
            }
            let n = self.src.read_more(&mut self.buf[self.len..])?;
            if n == 0 {
                self.eof = true;
            } else {
                self.len += n;
            }
        }
        Ok(())
    }

    /// The unread bytes currently buffered.
    fn available(&self) -> &[u8] {
        &self.buf[self.pos..self.len]
    }

    /// Marks `n` buffered bytes as read.
    fn consume(&mut self, n: usize) {
        debug_assert!(self.pos + n <= self.len);
        self.pos += n;
    }

    /// Drains the rest of the source, returning how many unread bytes
    /// were left (the "trailing bytes" count of the slurp decoders).
    fn count_to_end(&mut self) -> Result<usize, TraceError> {
        let mut total = self.len - self.pos;
        self.pos = self.len;
        while !self.eof {
            if self.buf.len() < self.window {
                self.buf.resize(self.window, 0);
            }
            let n = self.src.read_more(&mut self.buf[..])?;
            if n == 0 {
                self.eof = true;
            } else {
                total += n;
            }
        }
        Ok(total)
    }

    /// Decodes one record off the front of the window.
    fn decode_record(&mut self) -> Result<TraceRecord, TraceError> {
        self.ensure(MAX_RECORD_BYTES)?;
        let mut cur = self.available();
        let before = cur.remaining();
        let rec = format::decode_record(&mut cur)?;
        let used = before - cur.remaining();
        self.consume(used);
        Ok(rec)
    }
}

/// Streaming decoder for a program (`XTRP`) trace file: the header is
/// parsed eagerly, then [`next_chunk`](ProgramStream::next_chunk) hands
/// out bounded batches of decoded records until the declared record
/// count is exhausted (trailing bytes are rejected, as in
/// [`format::decode_program_raw`]).
pub struct ProgramStream<S> {
    feed: ByteFeed<S>,
    n_threads: usize,
    n_records: u64,
    decoded: u64,
    records: Vec<TraceRecord>,
    chunk_records: usize,
    done: bool,
    /// Originating file, when opened from disk: attached to refill and
    /// decode errors so a mid-file failure names the file, not just the
    /// offset.
    context: Option<PathBuf>,
}

impl<S: ChunkSource> ProgramStream<S> {
    /// Starts a stream with a fresh arena and default sizes.
    pub fn new(src: S) -> Result<ProgramStream<S>, TraceError> {
        ProgramStream::with_arena(src, StreamArena::new())
    }

    /// Starts a stream reusing `arena`'s buffers.
    pub fn with_arena(src: S, arena: StreamArena) -> Result<ProgramStream<S>, TraceError> {
        ProgramStream::with_options(src, arena, DEFAULT_WINDOW_BYTES, DEFAULT_CHUNK_RECORDS)
    }

    /// Starts a stream with explicit window/chunk sizes (small values
    /// exercise the refill path in tests).
    pub fn with_options(
        src: S,
        arena: StreamArena,
        window_bytes: usize,
        chunk_records: usize,
    ) -> Result<ProgramStream<S>, TraceError> {
        let StreamArena { bytes, mut records } = arena;
        records.clear();
        let mut feed = ByteFeed::new(src, bytes, window_bytes);
        feed.ensure(18)?;
        let mut cur = feed.available();
        let before = cur.remaining();
        format::check_header(&mut cur, format::PROGRAM_MAGIC)?;
        let n_threads = format::get_u32(&mut cur, "thread count")? as usize;
        let n_records = format::get_u64(&mut cur, "record count")?;
        let used = before - cur.remaining();
        feed.consume(used);
        Ok(ProgramStream {
            feed,
            n_threads,
            n_records,
            decoded: 0,
            records,
            chunk_records: chunk_records.max(1),
            done: false,
            context: None,
        })
    }

    /// The declared thread count.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The declared record count.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Decodes and returns the next chunk of records, or `None` once
    /// every declared record has been handed out (the trailing-bytes
    /// check runs at that point).
    pub fn next_chunk(&mut self) -> Result<Option<&[TraceRecord]>, TraceError> {
        if self.done {
            return Ok(None);
        }
        self.records.clear();
        while self.decoded < self.n_records && self.records.len() < self.chunk_records {
            let rec = self.feed.decode_record();
            let rec = rec.map_err(|e| in_ctx(&self.context, e))?;
            self.records.push(rec);
            self.decoded += 1;
        }
        if self.records.is_empty() {
            let trailing = self.feed.count_to_end();
            let trailing = trailing.map_err(|e| in_ctx(&self.context, e))?;
            if trailing > 0 {
                return Err(in_ctx(
                    &self.context,
                    TraceError::Format {
                        detail: format!("{trailing} trailing bytes after records"),
                    },
                ));
            }
            self.done = true;
            return Ok(None);
        }
        Ok(Some(&self.records))
    }

    /// Drains the stream into an owned [`ProgramTrace`] (no invariant
    /// checks — the streaming counterpart of `decode_program_raw`).
    pub fn read_to_end(&mut self) -> Result<ProgramTrace, TraceError> {
        let mut records = Vec::with_capacity((self.n_records as usize).min(1 << 20));
        while let Some(chunk) = self.next_chunk()? {
            records.extend_from_slice(chunk);
        }
        Ok(ProgramTrace {
            n_threads: self.n_threads,
            records,
        })
    }

    /// Recovers the arena for reuse on the next file.
    pub fn into_arena(self) -> StreamArena {
        StreamArena {
            bytes: self.feed.buf,
            records: self.records,
        }
    }
}

impl ProgramStream<FileSource> {
    /// Opens `path` as a streaming program trace.
    pub fn open(path: impl AsRef<Path>) -> Result<ProgramStream<FileSource>, TraceError> {
        ProgramStream::open_with_arena(path, StreamArena::new())
    }

    /// Opens `path` reusing `arena`'s buffers.
    pub fn open_with_arena(
        path: impl AsRef<Path>,
        arena: StreamArena,
    ) -> Result<ProgramStream<FileSource>, TraceError> {
        let path = path.as_ref();
        let src = FileSource::open(path).map_err(|e| TraceError::from(e).in_file(path))?;
        let mut stream = ProgramStream::with_arena(src, arena).map_err(|e| e.in_file(path))?;
        stream.context = Some(path.to_path_buf());
        Ok(stream)
    }
}

/// One step of a [`SetStream`]: either the header of the next per-thread
/// segment or a chunk of that segment's records.
#[derive(Debug)]
pub enum SetChunk<'a> {
    /// A new per-thread segment begins.
    Thread {
        /// Zero-based position of the segment in the file.
        position: usize,
        /// The thread id the segment header declares.
        thread: ThreadId,
        /// How many records the segment declares.
        n_records: u64,
    },
    /// The next records of the current segment (never empty).
    Records(&'a [TraceRecord]),
}

/// Streaming decoder for a trace-set (`XTPS`) file: yields a
/// [`SetChunk::Thread`] header followed by that segment's record chunks,
/// for each declared thread in file order.
pub struct SetStream<S> {
    feed: ByteFeed<S>,
    n_threads: usize,
    seg: usize,
    seg_remaining: u64,
    records: Vec<TraceRecord>,
    chunk_records: usize,
    done: bool,
    /// Originating file, when opened from disk (see [`ProgramStream`]).
    context: Option<PathBuf>,
}

impl<S: ChunkSource> SetStream<S> {
    /// Starts a stream with a fresh arena and default sizes.
    pub fn new(src: S) -> Result<SetStream<S>, TraceError> {
        SetStream::with_arena(src, StreamArena::new())
    }

    /// Starts a stream reusing `arena`'s buffers.
    pub fn with_arena(src: S, arena: StreamArena) -> Result<SetStream<S>, TraceError> {
        SetStream::with_options(src, arena, DEFAULT_WINDOW_BYTES, DEFAULT_CHUNK_RECORDS)
    }

    /// Starts a stream with explicit window/chunk sizes.
    pub fn with_options(
        src: S,
        arena: StreamArena,
        window_bytes: usize,
        chunk_records: usize,
    ) -> Result<SetStream<S>, TraceError> {
        let StreamArena { bytes, mut records } = arena;
        records.clear();
        let mut feed = ByteFeed::new(src, bytes, window_bytes);
        feed.ensure(10)?;
        let mut cur = feed.available();
        let before = cur.remaining();
        format::check_header(&mut cur, format::SET_MAGIC)?;
        let n_threads = format::get_u32(&mut cur, "thread count")? as usize;
        let used = before - cur.remaining();
        feed.consume(used);
        Ok(SetStream {
            feed,
            n_threads,
            seg: 0,
            seg_remaining: 0,
            records,
            chunk_records: chunk_records.max(1),
            done: false,
            context: None,
        })
    }

    /// The declared number of per-thread segments.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Advances the stream by one step (see [`SetChunk`]); `None` once
    /// every segment has been handed out.
    pub fn next_chunk(&mut self) -> Result<Option<SetChunk<'_>>, TraceError> {
        if self.done {
            return Ok(None);
        }
        if self.seg_remaining > 0 {
            self.records.clear();
            while self.seg_remaining > 0 && self.records.len() < self.chunk_records {
                let rec = self.feed.decode_record();
                let rec = rec.map_err(|e| in_ctx(&self.context, e))?;
                self.records.push(rec);
                self.seg_remaining -= 1;
            }
            return Ok(Some(SetChunk::Records(&self.records)));
        }
        if self.seg < self.n_threads {
            let ensured = self.feed.ensure(12);
            ensured.map_err(|e| in_ctx(&self.context, e))?;
            let mut cur = self.feed.available();
            let before = cur.remaining();
            let header: Result<(ThreadId, u64), TraceError> = (|| {
                let thread = ThreadId(format::get_u32(&mut cur, "thread id")?);
                let n_records = format::get_u64(&mut cur, "record count")?;
                Ok((thread, n_records))
            })();
            let (thread, n_records) = header.map_err(|e| in_ctx(&self.context, e))?;
            let used = before - cur.remaining();
            self.feed.consume(used);
            let position = self.seg;
            self.seg += 1;
            self.seg_remaining = n_records;
            return Ok(Some(SetChunk::Thread {
                position,
                thread,
                n_records,
            }));
        }
        let trailing = self.feed.count_to_end();
        let trailing = trailing.map_err(|e| in_ctx(&self.context, e))?;
        if trailing > 0 {
            return Err(in_ctx(
                &self.context,
                TraceError::Format {
                    detail: format!("{trailing} trailing bytes after records"),
                },
            ));
        }
        self.done = true;
        Ok(None)
    }

    /// Drains the stream into an owned [`TraceSet`] (no invariant
    /// checks — the streaming counterpart of `decode_set_raw`).
    pub fn read_to_end(&mut self) -> Result<TraceSet, TraceError> {
        let mut threads: Vec<ThreadTrace> = Vec::with_capacity(self.n_threads.min(1 << 16));
        loop {
            match self.next_chunk()? {
                None => break,
                Some(SetChunk::Thread {
                    thread, n_records, ..
                }) => threads.push(ThreadTrace {
                    thread,
                    records: Vec::with_capacity((n_records as usize).min(1 << 20)),
                }),
                Some(SetChunk::Records(recs)) => {
                    if let Some(t) = threads.last_mut() {
                        t.records.extend_from_slice(recs);
                    }
                }
            }
        }
        Ok(TraceSet { threads })
    }

    /// Recovers the arena for reuse on the next file.
    pub fn into_arena(self) -> StreamArena {
        StreamArena {
            bytes: self.feed.buf,
            records: self.records,
        }
    }
}

impl SetStream<FileSource> {
    /// Opens `path` as a streaming trace set.
    pub fn open(path: impl AsRef<Path>) -> Result<SetStream<FileSource>, TraceError> {
        SetStream::open_with_arena(path, StreamArena::new())
    }

    /// Opens `path` reusing `arena`'s buffers.
    pub fn open_with_arena(
        path: impl AsRef<Path>,
        arena: StreamArena,
    ) -> Result<SetStream<FileSource>, TraceError> {
        let path = path.as_ref();
        let src = FileSource::open(path).map_err(|e| TraceError::from(e).in_file(path))?;
        let mut stream = SetStream::with_arena(src, arena).map_err(|e| e.in_file(path))?;
        stream.context = Some(path.to_path_buf());
        Ok(stream)
    }
}

/// Which trace shape a file holds, per its magic bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A 1-processor program trace (`XTRP`).
    Program,
    /// A translated per-thread trace set (`XTPS`).
    Set,
}

/// Sniffs a file's magic bytes without reading the rest of it.
///
/// Returns `Ok(None)` for files that are too short or carry neither
/// magic (callers typically fall back to config-text parsing).
pub fn sniff_kind(path: impl AsRef<Path>) -> io::Result<Option<TraceKind>> {
    let mut f = File::open(path)?;
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match f.read(&mut magic[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(if got < 4 {
        None
    } else if &magic == format::PROGRAM_MAGIC {
        Some(TraceKind::Program)
    } else if &magic == format::SET_MAGIC {
        Some(TraceKind::Set)
    } else {
        None
    })
}

// ---------------------------------------------------------------------
// Spill-backed translation output
// ---------------------------------------------------------------------

static SPILL_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique temp directory holding per-thread spill runs;
/// removed (best-effort) on drop.
#[derive(Debug)]
pub struct SpillDir {
    root: PathBuf,
}

impl SpillDir {
    /// Creates a fresh spill directory under the system temp dir.
    pub fn new() -> io::Result<SpillDir> {
        let seq = SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!("extrap-spill-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&root)?;
        Ok(SpillDir { root })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    fn run_file(&self, thread: usize) -> io::Result<File> {
        OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.root.join(format!("thread-{thread}.run")))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// One thread's translated output run: an in-memory tail plus an
/// optional on-disk prefix (encoded records, appended oldest-first).
#[derive(Debug, Default)]
struct SpillRun {
    buf: Vec<TraceRecord>,
    spilled: u64,
    file: Option<File>,
}

/// A [`TranslateSink`] that keeps translated per-thread runs in memory
/// up to a byte budget and spills the largest run to a [`SpillDir`]
/// beyond it — the out-of-core half of the streaming translate→compile
/// pipeline.  Runs are written in per-thread order, so reassembly (into
/// a [`TraceSet`] or straight into an `XTPS` file) is a sequential
/// replay per thread: the k-way epoch merge happens on the way *in*
/// (the [`crate::translate::EpochTranslator`] emits records only once
/// their epoch resolves), never in memory on the way out.
///
/// Encode/replay scratch reuses [`StreamArena`] buffers; pass one via
/// [`SpillSink::with_arena`] to pool allocations across traces.
#[derive(Debug)]
pub struct SpillSink {
    runs: Vec<SpillRun>,
    dir: Option<SpillDir>,
    /// In-memory record budget, in bytes of `TraceRecord`s.
    budget: usize,
    in_mem: usize,
    spill_count: usize,
    /// Reused encode/replay byte scratch (the arena's byte buffer).
    scratch: Vec<u8>,
    peak_resident: usize,
}

impl SpillSink {
    /// A sink for `n_threads` runs holding at most `mem_budget` bytes of
    /// translated records in memory (0 spills every record batch).
    pub fn new(n_threads: usize, mem_budget: usize) -> SpillSink {
        SpillSink::with_arena(n_threads, mem_budget, StreamArena::new())
    }

    /// Like [`SpillSink::new`], reusing `arena`'s buffers for encode and
    /// replay scratch.
    pub fn with_arena(n_threads: usize, mem_budget: usize, arena: StreamArena) -> SpillSink {
        let StreamArena { mut bytes, .. } = arena;
        bytes.clear();
        SpillSink {
            runs: (0..n_threads).map(|_| SpillRun::default()).collect(),
            dir: None,
            budget: mem_budget,
            in_mem: 0,
            spill_count: 0,
            scratch: bytes,
            peak_resident: 0,
        }
    }

    /// How many spill flushes happened (0 = the whole set fit in budget).
    pub fn spill_count(&self) -> usize {
        self.spill_count
    }

    /// High-water mark of in-memory translated records, in bytes.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }

    /// Flushes the largest in-memory run to its spill file.
    fn spill_largest(&mut self) -> Result<(), TraceError> {
        let Some((t, _)) = self
            .runs
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.buf.len())
            .filter(|(_, r)| !r.buf.is_empty())
        else {
            return Ok(());
        };
        if self.dir.is_none() {
            self.dir = Some(SpillDir::new()?);
        }
        let run = &mut self.runs[t];
        if run.file.is_none() {
            run.file = Some(self.dir.as_ref().expect("spill dir").run_file(t)?);
        }
        self.scratch.clear();
        for rec in &run.buf {
            format::encode_record(&mut self.scratch, rec);
        }
        run.file
            .as_mut()
            .expect("spill file")
            .write_all(&self.scratch)?;
        run.spilled += run.buf.len() as u64;
        self.spill_count += 1;
        self.in_mem -= run.buf.len();
        run.buf.clear();
        Ok(())
    }

    /// Replays every run in thread order, consuming the sink:
    /// [`RunConsumer::on_thread`] fires once per thread (in order, with
    /// its final record count), then [`RunConsumer::on_record`] receives
    /// that thread's records — spilled prefix replayed from disk first,
    /// in-memory tail after.
    fn drain(mut self, consumer: &mut impl RunConsumer) -> Result<(), TraceError> {
        let runs = std::mem::take(&mut self.runs);
        for (t, run) in runs.into_iter().enumerate() {
            consumer.on_thread(t, run.spilled + run.buf.len() as u64)?;
            if let Some(file) = run.file {
                // Reuse the shared refill machinery for the read-back:
                // the run file is raw concatenated records.
                let bytes = std::mem::take(&mut self.scratch);
                let mut feed = ByteFeed::new(FileSource::new(file), bytes, DEFAULT_WINDOW_BYTES);
                for _ in 0..run.spilled {
                    let rec = feed.decode_record()?;
                    consumer.on_record(t, &rec)?;
                }
                self.scratch = feed.buf;
            }
            for rec in &run.buf {
                consumer.on_record(t, rec)?;
            }
        }
        Ok(())
    }

    /// Reassembles the translated [`TraceSet`] (spilled prefixes replayed
    /// from disk, in-memory tails appended).
    pub fn into_set(self) -> Result<TraceSet, TraceError> {
        struct Builder {
            threads: Vec<ThreadTrace>,
        }
        impl RunConsumer for Builder {
            fn on_thread(&mut self, t: usize, count: u64) -> Result<(), TraceError> {
                self.threads.push(ThreadTrace {
                    thread: ThreadId::from_index(t),
                    records: Vec::with_capacity((count as usize).min(1 << 20)),
                });
                Ok(())
            }
            fn on_record(&mut self, _t: usize, rec: &TraceRecord) -> Result<(), TraceError> {
                self.threads
                    .last_mut()
                    .expect("thread run started")
                    .records
                    .push(*rec);
                Ok(())
            }
        }
        let mut b = Builder {
            threads: Vec::with_capacity(self.runs.len()),
        };
        self.drain(&mut b)?;
        Ok(TraceSet { threads: b.threads })
    }

    /// Writes the translated set straight to an `XTPS` file without ever
    /// materializing it: header, then per thread a segment header and a
    /// sequential replay of that thread's run.  This is the fully
    /// out-of-core path (`extrap translate --stream`); the bytes are
    /// identical to `format::encode_set` of the whole-trace result.
    pub fn write_set_file(self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        use crate::bytesio::BufMut;
        struct FileOut {
            w: io::BufWriter<File>,
            buf: Vec<u8>,
        }
        impl RunConsumer for FileOut {
            fn on_thread(&mut self, t: usize, count: u64) -> Result<(), TraceError> {
                self.buf.clear();
                self.buf.put_u32_le(ThreadId::from_index(t).0);
                self.buf.put_u64_le(count);
                self.w.write_all(&self.buf)?;
                Ok(())
            }
            fn on_record(&mut self, _t: usize, rec: &TraceRecord) -> Result<(), TraceError> {
                self.buf.clear();
                format::encode_record(&mut self.buf, rec);
                self.w.write_all(&self.buf)?;
                Ok(())
            }
        }
        let mut out = FileOut {
            w: io::BufWriter::new(File::create(path)?),
            buf: Vec::with_capacity(MAX_RECORD_BYTES.max(16)),
        };
        out.buf.put_slice(format::SET_MAGIC);
        out.buf.put_u16_le(format::VERSION);
        out.buf.put_u32_le(self.runs.len() as u32);
        out.w.write_all(&out.buf)?;
        self.drain(&mut out)?;
        out.w.flush()?;
        Ok(())
    }
}

/// Receives a [`SpillSink`]'s replayed runs in thread order.
trait RunConsumer {
    fn on_thread(&mut self, t: usize, count: u64) -> Result<(), TraceError>;
    fn on_record(&mut self, t: usize, rec: &TraceRecord) -> Result<(), TraceError>;
}

impl TranslateSink for SpillSink {
    fn emit(&mut self, thread: usize, rec: TraceRecord) -> Result<(), TraceError> {
        self.runs[thread].buf.push(rec);
        self.in_mem += 1;
        let resident = self.in_mem * size_of::<TraceRecord>();
        if resident > self.peak_resident {
            self.peak_resident = resident;
        }
        if resident > self.budget {
            self.spill_largest()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PhaseProgram;
    use crate::translate::{translate, TranslateOptions};
    use extrap_time::DurationNs;

    fn sample_program() -> ProgramTrace {
        let mut p = PhaseProgram::new(3);
        p.push_uniform_phase(DurationNs(100));
        p.push_uniform_phase(DurationNs(250));
        p.record()
    }

    #[test]
    fn program_stream_matches_slurp_decoder() {
        let pt = sample_program();
        let bytes = format::encode_program(&pt);
        // Tiny window + tiny chunks force many refills and compactions.
        for (window, chunk) in [(1, 1), (7, 2), (64 * 1024, 4096)] {
            let mut s =
                ProgramStream::with_options(SliceSource(&bytes), StreamArena::new(), window, chunk)
                    .unwrap();
            assert_eq!(s.n_threads(), pt.n_threads);
            assert_eq!(s.n_records(), pt.records.len() as u64);
            let back = s.read_to_end().unwrap();
            assert_eq!(back, pt);
        }
    }

    #[test]
    fn set_stream_matches_slurp_decoder() {
        let ts = translate(&sample_program(), TranslateOptions::default()).unwrap();
        let bytes = format::encode_set(&ts);
        for (window, chunk) in [(1, 1), (13, 3), (64 * 1024, 4096)] {
            let mut s =
                SetStream::with_options(SliceSource(&bytes), StreamArena::new(), window, chunk)
                    .unwrap();
            assert_eq!(s.n_threads(), ts.n_threads());
            let back = s.read_to_end().unwrap();
            assert_eq!(back, ts);
        }
    }

    #[test]
    fn stream_errors_match_slurp_decoder_errors() {
        let bytes = format::encode_program(&sample_program());
        for cut in 0..bytes.len() {
            let slurp = format::decode_program_raw(&bytes[..cut]);
            let stream =
                ProgramStream::with_options(SliceSource(&bytes[..cut]), StreamArena::new(), 5, 2)
                    .and_then(|mut s| s.read_to_end());
            match (slurp, stream) {
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "cut {cut}"),
                (Ok(a), Ok(b)) => assert_eq!(a, b, "cut {cut}"),
                (a, b) => panic!("divergence at cut {cut}: slurp {a:?} vs stream {b:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected_with_exact_count() {
        let mut bytes = format::encode_program(&sample_program());
        bytes.extend_from_slice(&[0, 1, 2]);
        let err = ProgramStream::new(SliceSource(&bytes))
            .and_then(|mut s| s.read_to_end())
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            format::decode_program_raw(&bytes).unwrap_err().to_string()
        );
        assert!(err.to_string().contains("3 trailing bytes"));
    }

    #[test]
    fn arena_recycles_between_files() {
        let pt = sample_program();
        let bytes = format::encode_program(&pt);
        let mut arena = StreamArena::new();
        for _ in 0..3 {
            let mut s = ProgramStream::with_arena(SliceSource(&bytes), arena).unwrap();
            assert_eq!(s.read_to_end().unwrap(), pt);
            arena = s.into_arena();
            assert!(!arena.bytes.is_empty() || arena.bytes.capacity() > 0);
        }
    }

    #[test]
    fn sniff_detects_both_kinds_and_rejects_others() {
        let dir = std::env::temp_dir().join(format!("extrap-stream-sniff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pt = sample_program();
        let ts = translate(&pt, TranslateOptions::default()).unwrap();
        let p = dir.join("a.xtrp");
        let s = dir.join("a.xtps");
        let c = dir.join("a.cfg");
        std::fs::write(&p, format::encode_program(&pt)).unwrap();
        std::fs::write(&s, format::encode_set(&ts)).unwrap();
        std::fs::write(&c, "MipsRatio = 1.0\n").unwrap();
        assert_eq!(sniff_kind(&p).unwrap(), Some(TraceKind::Program));
        assert_eq!(sniff_kind(&s).unwrap(), Some(TraceKind::Set));
        assert_eq!(sniff_kind(&c).unwrap(), None);
        let short = dir.join("short");
        std::fs::write(&short, b"XT").unwrap();
        assert_eq!(sniff_kind(&short).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_source_streams_program() {
        let dir = std::env::temp_dir().join(format!("extrap-stream-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pt = sample_program();
        let path = dir.join("t.xtrp");
        std::fs::write(&path, format::encode_program(&pt)).unwrap();
        let back = ProgramStream::open(&path).unwrap().read_to_end().unwrap();
        assert_eq!(back, pt);
        std::fs::remove_dir_all(&dir).ok();
    }
}
