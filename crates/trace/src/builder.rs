//! Builders for program traces.
//!
//! [`ProgramTraceBuilder`] is a low-level append-only builder with a global
//! clock.  [`PhaseProgram`] builds the exact trace shape the non-preemptive
//! 1-processor runtime produces for a phase-structured data-parallel
//! program (threads run one after another within a phase, then all enter a
//! barrier) — handy for tests and synthetic workloads that don't want to
//! pull in the full `pcpp-rt` runtime.

use crate::event::{EventKind, ProgramTrace, TraceRecord};
use extrap_time::{BarrierId, DurationNs, ElementId, ThreadId, TimeNs};

/// Append-only builder over a global virtual clock, mimicking the
/// instrumented uniprocessor runtime's trace buffer.
#[derive(Debug)]
pub struct ProgramTraceBuilder {
    n_threads: usize,
    now: TimeNs,
    records: Vec<TraceRecord>,
}

impl ProgramTraceBuilder {
    /// Starts a trace for `n_threads` threads at time zero.
    pub fn new(n_threads: usize) -> ProgramTraceBuilder {
        assert!(n_threads > 0, "need at least one thread");
        ProgramTraceBuilder {
            n_threads,
            now: TimeNs::ZERO,
            records: Vec::new(),
        }
    }

    /// The current global clock.
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// Advances the global clock (computation happening between events).
    pub fn advance(&mut self, d: DurationNs) -> &mut Self {
        self.now += d;
        self
    }

    /// Emits an event for `thread` at the current clock.
    pub fn emit(&mut self, thread: ThreadId, kind: EventKind) -> &mut Self {
        assert!(
            thread.index() < self.n_threads,
            "thread {thread} out of range"
        );
        self.records.push(TraceRecord {
            time: self.now,
            thread,
            kind,
        });
        self
    }

    /// Finishes and returns the validated trace.
    pub fn finish(self) -> ProgramTrace {
        let pt = ProgramTrace {
            n_threads: self.n_threads,
            records: self.records,
        };
        pt.validate().expect("builder produced an invalid trace");
        pt
    }
}

/// A remote access performed by a thread within a phase.
#[derive(Clone, Copy, Debug)]
pub struct PhaseAccess {
    /// Offset into the phase's compute time at which the access occurs.
    pub after: DurationNs,
    /// Owning thread of the accessed element.
    pub owner: ThreadId,
    /// Accessed element.
    pub element: ElementId,
    /// Declared (whole-element) size in bytes.
    pub declared_bytes: u32,
    /// Actually required size in bytes.
    pub actual_bytes: u32,
    /// True for a remote write, false for a read.
    pub write: bool,
}

/// Per-thread work inside one data-parallel phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseWork {
    /// Total computation time of the thread in this phase.
    pub compute: DurationNs,
    /// Remote accesses issued during the phase, ordered by `after`.
    pub accesses: Vec<PhaseAccess>,
}

/// A phase-structured synthetic program: a sequence of phases, each ending
/// in a global barrier, exactly matching the pC++ execution model
/// (parallel method invocation followed by a barrier).
#[derive(Clone, Debug)]
pub struct PhaseProgram {
    n_threads: usize,
    phases: Vec<Vec<PhaseWork>>,
}

impl PhaseProgram {
    /// Creates an empty program for `n_threads` threads.
    pub fn new(n_threads: usize) -> PhaseProgram {
        assert!(n_threads > 0);
        PhaseProgram {
            n_threads,
            phases: Vec::new(),
        }
    }

    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Appends a phase described by one [`PhaseWork`] per thread.
    ///
    /// # Panics
    /// Panics if `work.len() != n_threads`.
    pub fn push_phase(&mut self, work: Vec<PhaseWork>) -> &mut Self {
        assert_eq!(work.len(), self.n_threads, "one PhaseWork per thread");
        self.phases.push(work);
        self
    }

    /// Appends a phase where every thread computes for `compute` with no
    /// communication (an "embarrassingly parallel" phase).
    pub fn push_uniform_phase(&mut self, compute: DurationNs) -> &mut Self {
        let work = (0..self.n_threads)
            .map(|_| PhaseWork {
                compute,
                accesses: Vec::new(),
            })
            .collect();
        self.push_phase(work)
    }

    /// Generates the 1-processor trace exactly as the non-preemptive
    /// runtime would: within each phase, threads run to completion one
    /// after another (thread switches happen only at barrier boundaries).
    ///
    /// Crucially, a thread's `BarrierExit` event is recorded at the moment
    /// the thread is *rescheduled* after the barrier — not when the
    /// barrier logically lowers — so the measured delta between a thread's
    /// barrier exit and its next event covers only that thread's own
    /// computation.  This is the property the translation algorithm of
    /// §3.2 relies on.
    pub fn record(&self) -> ProgramTrace {
        let mut b = ProgramTraceBuilder::new(self.n_threads);
        for (phase_idx, phase) in self.phases.iter().enumerate() {
            let barrier = BarrierId::from_index(phase_idx);
            for (ti, work) in phase.iter().enumerate() {
                let thread = ThreadId::from_index(ti);
                // The thread is (re)scheduled here.
                if phase_idx == 0 {
                    b.emit(thread, EventKind::ThreadBegin);
                } else {
                    b.emit(
                        thread,
                        EventKind::BarrierExit {
                            barrier: BarrierId::from_index(phase_idx - 1),
                        },
                    );
                }
                // The thread runs its whole phase, recording remote
                // accesses inline (they cost nothing on the uniprocessor —
                // the element lives in the shared global space).
                let mut consumed = DurationNs::ZERO;
                for acc in &work.accesses {
                    assert!(
                        acc.after >= consumed && acc.after <= work.compute,
                        "accesses must be ordered and within the phase"
                    );
                    b.advance(acc.after - consumed);
                    consumed = acc.after;
                    let kind = if acc.write {
                        EventKind::RemoteWrite {
                            owner: acc.owner,
                            element: acc.element,
                            declared_bytes: acc.declared_bytes,
                            actual_bytes: acc.actual_bytes,
                        }
                    } else {
                        EventKind::RemoteRead {
                            owner: acc.owner,
                            element: acc.element,
                            declared_bytes: acc.declared_bytes,
                            actual_bytes: acc.actual_bytes,
                        }
                    };
                    b.emit(thread, kind);
                }
                b.advance(work.compute - consumed);
                b.emit(thread, EventKind::BarrierEnter { barrier });
            }
        }
        // Final rescheduling round: each thread exits the last barrier and
        // terminates.  (A program with no phases still begins and ends.)
        match self.phases.len().checked_sub(1) {
            Some(last) => {
                for t in extrap_time::threads(self.n_threads) {
                    b.emit(
                        t,
                        EventKind::BarrierExit {
                            barrier: BarrierId::from_index(last),
                        },
                    );
                    b.emit(t, EventKind::ThreadEnd);
                }
            }
            None => {
                for t in extrap_time::threads(self.n_threads) {
                    b.emit(t, EventKind::ThreadBegin);
                    b.emit(t, EventKind::ThreadEnd);
                }
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_clock() {
        let mut b = ProgramTraceBuilder::new(1);
        b.emit(ThreadId(0), EventKind::ThreadBegin);
        b.advance(DurationNs(100));
        b.emit(ThreadId(0), EventKind::ThreadEnd);
        let pt = b.finish();
        assert_eq!(pt.records[0].time, TimeNs(0));
        assert_eq!(pt.records[1].time, TimeNs(100));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_foreign_thread() {
        let mut b = ProgramTraceBuilder::new(1);
        b.emit(ThreadId(5), EventKind::ThreadBegin);
    }

    #[test]
    fn phase_program_serializes_threads() {
        let mut p = PhaseProgram::new(2);
        p.push_uniform_phase(DurationNs(1_000));
        let pt = p.record();
        pt.validate().unwrap();
        // begin(2) + [enter(2) + exit(2)] + end(2)
        assert_eq!(pt.records.len(), 8);
        // Thread 1's barrier entry is 2000ns in: it ran *after* thread 0 on
        // the single processor.
        let enters: Vec<_> = pt
            .records
            .iter()
            .filter(|r| matches!(r.kind, EventKind::BarrierEnter { .. }))
            .collect();
        assert_eq!(enters[0].time, TimeNs(1_000));
        assert_eq!(enters[1].time, TimeNs(2_000));
    }

    #[test]
    fn phase_program_embeds_accesses() {
        let mut p = PhaseProgram::new(2);
        p.push_phase(vec![
            PhaseWork {
                compute: DurationNs(500),
                accesses: vec![PhaseAccess {
                    after: DurationNs(200),
                    owner: ThreadId(1),
                    element: ElementId(7),
                    declared_bytes: 1024,
                    actual_bytes: 8,
                    write: false,
                }],
            },
            PhaseWork {
                compute: DurationNs(500),
                accesses: vec![],
            },
        ]);
        let pt = p.record();
        let remote: Vec<_> = pt.records.iter().filter(|r| r.kind.is_remote()).collect();
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].time, TimeNs(200));
        assert_eq!(remote[0].thread, ThreadId(0));
    }

    #[test]
    #[should_panic(expected = "one PhaseWork per thread")]
    fn phase_program_checks_arity() {
        let mut p = PhaseProgram::new(3);
        p.push_phase(vec![PhaseWork::default()]);
    }
}
