//! Bandwidth/rate conversions.
//!
//! The paper specifies network bandwidth as `ByteTransferTime` in
//! microseconds per byte, but quotes it in MB/s (e.g. "0.118 µsec
//! (8.5 Mbytes/second)" for the CM-5).  These helpers convert between the
//! two so parameter sets can be written either way.

/// Converts a bandwidth in megabytes per second to a per-byte transfer
/// time in microseconds (the paper's `ByteTransferTime` unit).
///
/// Uses the paper's convention of 1 MB = 10^6 bytes: 8.5 MB/s ↔ 0.118 µs/B.
///
/// # Panics
/// Panics on non-positive or non-finite bandwidth.
#[inline]
pub fn mbps_to_us_per_byte(mbps: f64) -> f64 {
    assert!(
        mbps.is_finite() && mbps > 0.0,
        "bandwidth must be positive and finite, got {mbps} MB/s"
    );
    1.0 / mbps
}

/// Converts a per-byte transfer time in microseconds back to MB/s.
///
/// # Panics
/// Panics on non-positive or non-finite transfer time.
#[inline]
pub fn us_per_byte_to_mbps(us_per_byte: f64) -> f64 {
    assert!(
        us_per_byte.is_finite() && us_per_byte > 0.0,
        "transfer time must be positive and finite, got {us_per_byte} us/B"
    );
    1.0 / us_per_byte
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_figures_round_trip() {
        // §4.1: 0.2 us/B = 5 MB/s and 0.005 us/B = 200 MB/s.
        assert!((mbps_to_us_per_byte(5.0) - 0.2).abs() < 1e-12);
        assert!((mbps_to_us_per_byte(200.0) - 0.005).abs() < 1e-12);
        // Table 3: 0.118 us/B is quoted as 8.5 MB/s (the paper rounds).
        assert!((us_per_byte_to_mbps(0.118) - 8.5).abs() < 0.03);
    }

    #[test]
    fn conversions_are_inverses() {
        for mbps in [1.0, 8.5, 20.0, 200.0, 1234.5] {
            let back = us_per_byte_to_mbps(mbps_to_us_per_byte(mbps));
            assert!((back - mbps).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = mbps_to_us_per_byte(0.0);
    }
}
