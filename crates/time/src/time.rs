//! Simulation time (`TimeNs`) and durations (`DurationNs`) in integer
//! nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since the start of
/// the simulation.
///
/// `TimeNs` is a transparent `u64` newtype: totally ordered, `Copy`, and
/// immune to floating-point drift.  Durations between points are
/// [`DurationNs`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeNs(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DurationNs(pub u64);

impl TimeNs {
    /// The origin of simulated time.
    pub const ZERO: TimeNs = TimeNs(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: TimeNs = TimeNs(u64::MAX);

    /// Builds a time from a microsecond quantity (the unit the paper uses
    /// for every model parameter).  Rounds to the nearest nanosecond.
    #[inline]
    pub fn from_us(us: f64) -> TimeNs {
        TimeNs(us_to_ns(us))
    }

    /// This time as fractional microseconds (for reporting only).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time as fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// The duration from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so that would indicate a simulator bug.
    #[inline]
    pub fn since(self, earlier: TimeNs) -> DurationNs {
        DurationNs(
            self.0
                .checked_sub(earlier.0)
                .expect("simulated time ran backwards"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: TimeNs) -> DurationNs {
        DurationNs(self.0.saturating_sub(earlier.0))
    }

    /// Rounds this time *up* to the next multiple of `quantum` (used by
    /// polling-style models that only observe state on a fixed cadence).
    /// A zero quantum returns the time unchanged.
    #[inline]
    pub fn round_up_to(self, quantum: DurationNs) -> TimeNs {
        if quantum.0 == 0 {
            return self;
        }
        let rem = self.0 % quantum.0;
        if rem == 0 {
            self
        } else {
            TimeNs(self.0 + (quantum.0 - rem))
        }
    }
}

impl DurationNs {
    /// The empty duration.
    pub const ZERO: DurationNs = DurationNs(0);

    /// Builds a duration from microseconds, rounding to the nearest ns.
    #[inline]
    pub fn from_us(us: f64) -> DurationNs {
        DurationNs(us_to_ns(us))
    }

    /// Builds a duration from fractional seconds.
    #[inline]
    pub fn from_secs(s: f64) -> DurationNs {
        DurationNs(us_to_ns(s * 1_000_000.0))
    }

    /// This duration as fractional microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration as fractional seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Raw nanoseconds.
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// True iff this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales this duration by a non-negative factor, rounding to the
    /// nearest nanosecond.  This is how the *MipsRatio* processor-speed
    /// scaling of §3.3.1 is applied to inter-event compute times.
    ///
    /// # Panics
    /// Panics on negative or non-finite factors.
    #[inline]
    pub fn scale(self, factor: f64) -> DurationNs {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        DurationNs((self.0 as f64 * factor).round() as u64)
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: DurationNs) -> Option<DurationNs> {
        self.0.checked_sub(rhs.0).map(DurationNs)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0.max(rhs.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0.min(rhs.0))
    }
}

#[inline]
fn us_to_ns(us: f64) -> u64 {
    assert!(
        us.is_finite() && us >= 0.0,
        "time quantities must be finite and non-negative, got {us} us"
    );
    (us * 1_000.0).round() as u64
}

impl Add<DurationNs> for TimeNs {
    type Output = TimeNs;
    #[inline]
    fn add(self, rhs: DurationNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign<DurationNs> for TimeNs {
    #[inline]
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 += rhs.0;
    }
}

impl Sub<DurationNs> for TimeNs {
    type Output = TimeNs;
    #[inline]
    fn sub(self, rhs: DurationNs) -> TimeNs {
        TimeNs(self.0 - rhs.0)
    }
}

impl Add for DurationNs {
    type Output = DurationNs;
    #[inline]
    fn add(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0 + rhs.0)
    }
}

impl AddAssign for DurationNs {
    #[inline]
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 += rhs.0;
    }
}

impl Sub for DurationNs {
    type Output = DurationNs;
    #[inline]
    fn sub(self, rhs: DurationNs) -> DurationNs {
        DurationNs(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for DurationNs {
    #[inline]
    fn sub_assign(&mut self, rhs: DurationNs) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for DurationNs {
    type Output = DurationNs;
    #[inline]
    fn mul(self, rhs: u64) -> DurationNs {
        DurationNs(self.0 * rhs)
    }
}

impl Div<u64> for DurationNs {
    type Output = DurationNs;
    #[inline]
    fn div(self, rhs: u64) -> DurationNs {
        DurationNs(self.0 / rhs)
    }
}

impl Sum for DurationNs {
    fn sum<I: Iterator<Item = DurationNs>>(iter: I) -> DurationNs {
        DurationNs(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Debug for DurationNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for DurationNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_us_round_trips_microseconds() {
        let t = TimeNs::from_us(5.0);
        assert_eq!(t.as_ns(), 5_000);
        assert!((t.as_us() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_us_rounds_to_nearest_ns() {
        assert_eq!(DurationNs::from_us(0.0005).as_ns(), 1); // 0.5ns -> 1
        assert_eq!(DurationNs::from_us(0.0004).as_ns(), 0);
        assert_eq!(DurationNs::from_us(0.118).as_ns(), 118);
    }

    #[test]
    fn time_plus_duration() {
        let t = TimeNs(100) + DurationNs(50);
        assert_eq!(t, TimeNs(150));
    }

    #[test]
    fn since_computes_gap() {
        assert_eq!(TimeNs(300).since(TimeNs(120)), DurationNs(180));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn since_panics_on_negative_gap() {
        let _ = TimeNs(10).since(TimeNs(20));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(TimeNs(10).saturating_since(TimeNs(20)), DurationNs::ZERO);
    }

    #[test]
    fn round_up_to_quantum() {
        let q = DurationNs(100);
        assert_eq!(TimeNs(0).round_up_to(q), TimeNs(0));
        assert_eq!(TimeNs(1).round_up_to(q), TimeNs(100));
        assert_eq!(TimeNs(100).round_up_to(q), TimeNs(100));
        assert_eq!(TimeNs(101).round_up_to(q), TimeNs(200));
        assert_eq!(TimeNs(101).round_up_to(DurationNs::ZERO), TimeNs(101));
    }

    #[test]
    fn scale_applies_mips_ratio() {
        let d = DurationNs(1_000);
        assert_eq!(d.scale(0.41), DurationNs(410));
        assert_eq!(d.scale(2.0), DurationNs(2_000));
        assert_eq!(d.scale(1.0), d);
        assert_eq!(d.scale(0.0), DurationNs::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn scale_rejects_negative() {
        let _ = DurationNs(1).scale(-1.0);
    }

    #[test]
    fn duration_arithmetic() {
        assert_eq!(DurationNs(5) + DurationNs(7), DurationNs(12));
        assert_eq!(DurationNs(7) - DurationNs(5), DurationNs(2));
        assert_eq!(DurationNs(7) * 3, DurationNs(21));
        assert_eq!(DurationNs(7) / 2, DurationNs(3));
        assert_eq!(DurationNs(3).max(DurationNs(9)), DurationNs(9));
        assert_eq!(DurationNs(3).min(DurationNs(9)), DurationNs(3));
    }

    #[test]
    fn duration_sum() {
        let total: DurationNs = [DurationNs(1), DurationNs(2), DurationNs(3)]
            .into_iter()
            .sum();
        assert_eq!(total, DurationNs(6));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", TimeNs(1_500)), "1.500us");
        assert_eq!(format!("{}", DurationNs(250)), "0.250us");
    }
}
