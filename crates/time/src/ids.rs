//! Identifier newtypes for threads, processors, barriers, and collection
//! elements.
//!
//! Threads are the unit of data-parallel execution in the pC++ model; in
//! the extrapolated target each thread maps to a processor (or, in the
//! multithreaded extension, several threads share one processor).  Using
//! distinct newtypes keeps thread/processor confusion out of the simulator.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if the index does not fit in `u32`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id index overflow"))
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A pC++ runtime thread (one per collection-distribution slot).
    ThreadId,
    "T"
);
id_newtype!(
    /// A physical processor of the (simulated) target machine.
    ProcId,
    "P"
);
id_newtype!(
    /// A global barrier instance; barriers are numbered in program order.
    BarrierId,
    "B"
);
id_newtype!(
    /// An element of a distributed collection (global element index).
    ElementId,
    "E"
);

/// Iterates over `ThreadId`s `0..n`.
pub fn threads(n: usize) -> impl Iterator<Item = ThreadId> + Clone {
    (0..u32::try_from(n).expect("thread count overflow")).map(ThreadId)
}

/// Iterates over `ProcId`s `0..n`.
pub fn procs(n: usize) -> impl Iterator<Item = ProcId> + Clone {
    (0..u32::try_from(n).expect("proc count overflow")).map(ProcId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", ThreadId(3)), "T3");
        assert_eq!(format!("{:?}", ProcId(7)), "P7");
        assert_eq!(format!("{}", BarrierId(0)), "B0");
        assert_eq!(format!("{}", ElementId(12)), "E12");
    }

    #[test]
    fn ids_round_trip_indices() {
        let t = ThreadId::from_index(42);
        assert_eq!(t.index(), 42);
        assert_eq!(t, ThreadId(42));
    }

    #[test]
    fn id_iterators_cover_range() {
        let ts: Vec<ThreadId> = threads(4).collect();
        assert_eq!(ts, vec![ThreadId(0), ThreadId(1), ThreadId(2), ThreadId(3)]);
        assert_eq!(procs(2).count(), 2);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(ProcId(0) < ProcId(31));
    }
}
