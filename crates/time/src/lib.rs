#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixed-point simulation time and identifier types shared by every
//! ExtraP-rs crate.
//!
//! All simulation state advances on a single integer nanosecond clock
//! ([`TimeNs`]); model parameters are expressed in microseconds (as in the
//! paper) and converted once at configuration time.  Using integer
//! nanoseconds keeps every experiment bit-reproducible — there is no
//! floating-point accumulation anywhere on the simulation path.

pub mod ids;
pub mod rate;
pub mod time;

pub use ids::{procs, threads, BarrierId, ElementId, ProcId, ThreadId};
pub use rate::{mbps_to_us_per_byte, us_per_byte_to_mbps};
pub use time::{DurationNs, TimeNs};
