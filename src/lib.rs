#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # perf-extrap — ExtraP-rs umbrella crate
//!
//! A Rust reproduction of *Performance Extrapolation of Parallel Programs*
//! (K. Shanmugam, A. D. Malony, B. Mohr — ICPP 1995 / CIS-TR-95-14).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`time`] — fixed-point simulation time and ids,
//! * [`trace`] — high-level event traces and the §3.2 translation algorithm,
//! * [`sim`] — the deterministic discrete-event kernel,
//! * [`rt`] — the pC++-style object-parallel runtime (1-processor,
//!   non-preemptive, instrumented),
//! * [`models`] — the ExtraP processor / remote-access / barrier models and
//!   the trace-driven extrapolation engine,
//! * [`refsim`] — the link-level reference machine ("measured" ground truth),
//! * [`workloads`] — the pC++ benchmark suite plus Matmul.
//!
//! ## Quickstart
//!
//! ```
//! use perf_extrap::prelude::*;
//!
//! // 1. Run a 4-thread program on "one processor" and record its trace.
//! let program = Program::new(4);
//! let coll = Collection::<f64>::build(Distribution::block_1d(16, 4), |i| i.0 as f64);
//! let measured = program.run(|ctx| {
//!     let mut acc = 0.0;
//!     for idx in coll.local_indices(ctx.id()) {
//!         acc += coll.read(ctx, idx, |v| *v);
//!         ctx.charge_flops(1);
//!     }
//!     ctx.barrier();
//! });
//!
//! // 2. Translate to idealized per-thread traces.
//! let traces = translate(&measured, TranslateOptions::default()).unwrap();
//!
//! // 3. Extrapolate to a 4-processor CM-5.
//! let prediction = Extrapolator::new(machine::cm5()).run(&traces).unwrap();
//! assert!(prediction.exec_time() > TimeNs::ZERO);
//! ```
//!
//! Whole parameter grids run in parallel through the
//! [`sweep`](models::sweep) engine — see `examples/sweep.rs`.

pub use extrap_core as models;
pub use extrap_refsim as refsim;
pub use extrap_sim as sim;
pub use extrap_time as time;
pub use extrap_trace as trace;
pub use extrap_workloads as workloads;
pub use pcpp_rt as rt;

/// The most common imports in one place.
pub mod prelude {
    pub use extrap_core::{
        extrapolate, extrapolate_clustered, extrapolate_program, machine, parallel_map, sweep,
        BarrierAlgorithm, BarrierParams, ClusterParams, CommParams, Extrapolator,
        MultithreadParams, NetworkParams, Prediction, ProcBreakdown, ReprPlan, Scalability,
        ServicePolicy, SharedTraceCache, SimParams, SimStrategy, SizeMode, SweepError, SweepGrid,
        SweepJob, ThreadMapping, Topology,
    };
    pub use extrap_refsim::RefMachine;
    pub use extrap_time::{BarrierId, DurationNs, ElementId, ProcId, ThreadId, TimeNs};
    pub use extrap_trace::{
        cluster_epochs, determinism_report, epoch_signatures, phase_profiles, splitmix64,
        translate, ClusterOptions, EpochClustering, EpochSignature, PhaseProgram, ProgramTrace,
        ThreadTrace, TraceSet, TraceStats, TranslateOptions,
    };
    pub use extrap_workloads::{Bench, Scale};
    pub use pcpp_rt::{
        Collection, Collectives, Dist1, Distribution, Index2, Program, ThreadCtx, WorkModel,
    };
}
