//! The §4.1 performance-debugging walk-through, replayed.
//!
//! *Grid*'s speedup levels off after four processors on the distributed
//! machine.  Why?  All of the following investigation happens with ONE
//! single-processor measurement and re-parameterized simulations — the
//! paper's core pitch.
//!
//! ```text
//! cargo run --release --example performance_debugging
//! ```

use perf_extrap::prelude::*;

fn main() {
    let scale = Scale::Small;
    let procs = [1usize, 2, 4, 8, 16, 32];

    // One measurement per processor count (the paper's workflow: traces
    // come from cheap uniprocessor runs).
    println!("measuring Grid on one processor ...");
    let traces: Vec<TraceSet> = procs
        .iter()
        .map(|&n| translate(&Bench::Grid.trace(n, scale), TranslateOptions::default()).unwrap())
        .collect();

    let speedups = |params: &SimParams| -> Vec<f64> {
        let base = extrapolate(&traces[0], params).unwrap().exec_time();
        traces
            .iter()
            .map(|ts| extrapolate(ts, params).unwrap().speedup_vs(base))
            .collect()
    };
    let show = |label: &str, s: &[f64]| {
        print!("{label:32}");
        for v in s {
            print!(" {v:>7.2}");
        }
        println!();
    };

    print!("{:32}", "");
    for p in procs {
        print!(" {:>7}", format!("P={p}"));
    }
    println!();

    // Step 1: the baseline distributed machine.
    let base = machine::default_distributed();
    show("baseline (20 MB/s)", &speedups(&base));

    // Step 2: maybe it's bandwidth?  Extrapolate 200 MB/s links.
    let mut high_bw = base.clone();
    high_bw.comm = high_bw.comm.with_bandwidth_mbps(200.0);
    show("what if 200 MB/s?", &speedups(&high_bw));

    // Step 3: the ideal environment bounds what's achievable.
    show("ideal (zero cost)", &speedups(&machine::ideal()));

    // Step 4: the trace statistics point at the real problem — barely
    // any barriers, but an enormous declared transfer volume.
    let stats = TraceStats::from_set(&traces[5]);
    println!(
        "\ntrace statistics (32 threads): {} barriers; declared transfer {} bytes, \
         actual transfer {} bytes ({}x inflation!)\n",
        stats.barriers(),
        stats.total_declared_bytes(),
        stats.total_actual_bytes(),
        stats.total_declared_bytes() / stats.total_actual_bytes().max(1),
    );

    // Step 5: simulate with the *actual* transferred sizes.
    let mut actual = base.clone();
    actual.size_mode = SizeMode::Actual;
    show("actual message sizes", &speedups(&actual));

    // Step 6: with the size bug gone, start-up overhead is next.
    let mut tuned = actual.clone();
    tuned.comm = tuned.comm.with_startup_us(10.0);
    show("actual sizes + 10us startup", &speedups(&tuned));

    println!(
        "\nAlso visible: no improvement from 4 to 8 processors — the (BLOCK,BLOCK)\n\
         distribution uses a floor(sqrt(N))^2 thread grid, so at 8 processors four\n\
         of them never receive any elements (the paper's idle-processor artifact)."
    );
}
