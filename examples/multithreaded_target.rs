//! The paper's future-work extension (§6), implemented: extrapolate an
//! n-thread, 1-processor run to an n-thread, **m-processor** target
//! (`m <= n`), where several threads share each processor, context
//! switches cost time, and messages between co-located threads bypass
//! the interconnect.
//!
//! ```text
//! cargo run --release --example multithreaded_target
//! ```

use perf_extrap::prelude::*;

fn main() {
    let n_threads = 16;
    let trace = Bench::Cyclic.trace(n_threads, Scale::Small);
    let traces = translate(&trace, TranslateOptions::default()).unwrap();

    println!(
        "Cyclic with {n_threads} threads, extrapolated onto m processors\n\
         (block vs cyclic thread placement):\n"
    );
    println!(
        "{:>6} {:>14} {:>14} {:>16}",
        "m", "block [ms]", "cyclic [ms]", "1-per-proc [ms]"
    );
    let full = {
        let params = machine::default_distributed();
        extrapolate(&traces, &params).unwrap().exec_time().as_ms()
    };
    for m in [1usize, 2, 4, 8, 16] {
        let time_with = |mapping: ThreadMapping| {
            let mut params = machine::default_distributed();
            params.multithread = MultithreadParams {
                mapping,
                switch_cost: DurationNs::from_us(10.0),
            };
            extrapolate(&traces, &params).unwrap().exec_time().as_ms()
        };
        let block = time_with(ThreadMapping::Block { procs: m });
        let cyclic = time_with(ThreadMapping::Cyclic { procs: m });
        let one_per = if m == n_threads {
            format!("{full:>16.3}")
        } else {
            format!("{:>16}", "-")
        };
        println!("{m:>6} {block:>14.3} {cyclic:>14.3} {one_per}");
    }

    println!(
        "\nBlock placement keeps neighbouring threads on the same processor, so\n\
         Cyclic's distance-2^l exchanges stay local at shallow levels; cyclic\n\
         placement scatters them across the machine.  Extrapolation quantifies\n\
         the difference before the multithreaded runtime even exists — the\n\
         paper's §6 scenario."
    );
}
