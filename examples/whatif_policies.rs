//! "What if" exploration of runtime-system policies (§4.1, Fig. 8): how
//! should the target machine service remote data requests — interrupts,
//! polling (at which interval?), or only at waits — and how does the
//! answer depend on the program?
//!
//! ```text
//! cargo run --release --example whatif_policies
//! ```

use perf_extrap::prelude::*;

fn main() {
    let scale = Scale::Small;
    let procs = [2usize, 4, 8, 16, 32];
    let policies: Vec<(String, ServicePolicy)> = vec![
        ("no-interrupt".into(), ServicePolicy::NoInterrupt),
        ("interrupt".into(), ServicePolicy::Interrupt),
        ("poll 50us".into(), ServicePolicy::poll_us(50.0)),
        ("poll 100us".into(), ServicePolicy::poll_us(100.0)),
        ("poll 500us".into(), ServicePolicy::poll_us(500.0)),
        ("poll 2000us".into(), ServicePolicy::poll_us(2000.0)),
    ];

    for bench in [Bench::Cyclic, Bench::Grid] {
        println!("== {} (CommStartupTime = 100us) ==", bench.name());
        print!("{:16}", "policy");
        for p in procs {
            print!(" {:>10}", format!("P={p}"));
        }
        println!("  [ms]");
        let traces: Vec<TraceSet> = procs
            .iter()
            .map(|&n| translate(&bench.trace(n, scale), TranslateOptions::default()).unwrap())
            .collect();
        let mut best: Vec<(f64, String)> = vec![(f64::INFINITY, String::new()); procs.len()];
        for (label, policy) in &policies {
            let mut params = machine::default_distributed();
            params.comm = params.comm.with_startup_us(100.0);
            params.policy = *policy;
            print!("{label:16}");
            for (i, ts) in traces.iter().enumerate() {
                let t = extrapolate(ts, &params).unwrap().exec_time().as_ms();
                if t < best[i].0 {
                    best[i] = (t, label.clone());
                }
                print!(" {t:>10.3}");
            }
            println!();
        }
        print!("{:16}", "best:");
        for (t, label) in &best {
            let _ = t;
            print!(" {label:>10}");
        }
        println!("\n");
    }

    println!(
        "The optimal policy is program- and scale-specific — exactly the kind of\n\
         application-specific runtime-system decision §4.1 argues extrapolation\n\
         lets you make without access to the target machine."
    );
}
