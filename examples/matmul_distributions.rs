//! The §4.2 validation study: choose a data distribution for Matmul by
//! extrapolation, and check the choice against a detailed link-level
//! simulation of the target (our stand-in for the paper's measured
//! CM-5).
//!
//! ```text
//! cargo run --release --example matmul_distributions
//! ```

use perf_extrap::prelude::*;
use perf_extrap::workloads::matmul;

fn main() {
    let n = 24;
    let procs = [4usize, 16, 32];
    let params = machine::cm5();
    let reference = RefMachine::new(params.clone());

    println!("Matmul {n}x{n}, CM-5 parameters (Table 3)\n");
    for p in procs {
        println!("-- {p} processors --");
        let mut rows = Vec::new();
        for dist in matmul::nine_distributions() {
            let (trace, _) = matmul::run(p, &matmul::MatmulConfig { n, dist });
            let ts = translate(&trace, TranslateOptions::default()).unwrap();
            let predicted = extrapolate(&ts, &params).unwrap().exec_time();
            let measured = reference.measure(&ts).unwrap().exec_time();
            rows.push((
                format!("({},{})", dist.0.letter(), dist.1.letter()),
                predicted.as_ms(),
                measured.as_ms(),
            ));
        }
        println!(
            "{:8} {:>12} {:>12} {:>8}",
            "dist", "predicted", "measured", "err"
        );
        for (label, pred, meas) in &rows {
            println!(
                "{label:8} {pred:>9.3} ms {meas:>9.3} ms {:>7.1}%",
                (pred - meas) / meas * 100.0
            );
        }
        let best_pred = rows
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let best_meas = rows
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        println!(
            "extrapolation picks {}, the detailed simulation confirms {}\n",
            best_pred.0, best_meas.0
        );
    }
}
