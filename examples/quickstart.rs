//! Quickstart: write a small data-parallel program, measure it on "one
//! processor", and predict its execution on three different target
//! machines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perf_extrap::prelude::*;

fn main() {
    let n_threads = 8;
    let n_elems = 64;

    // A distributed dot-product-ish kernel: every thread combines its
    // local elements, then reads its right neighbour's partial, twice.
    let values =
        Collection::<f64>::build(Distribution::block_1d(n_elems, n_threads), |i| i.0 as f64);
    let partials = Collection::<f64>::build(Distribution::block_1d(n_threads, n_threads), |_| 0.0);

    let program = Program::new(n_threads);
    let measured: ProgramTrace = program.run(|ctx| {
        let me = ctx.id();
        let my_slot = Index2(me.index(), 0);
        // Local phase.
        let mut acc = 0.0;
        for idx in values.local_indices(me) {
            acc += values.read(ctx, idx, |v| v * v);
            ctx.charge_flops(2);
        }
        partials.write(ctx, my_slot, |p| *p = acc);
        ctx.barrier();
        // Neighbour-combining phases (remote element reads).
        for _ in 0..2 {
            let right = (me.index() + 1) % ctx.n_threads();
            let theirs = partials.read(ctx, Index2(right, 0), |p| *p);
            ctx.charge_flops(1);
            partials.write(ctx, my_slot, |p| *p += theirs * 0.5);
            ctx.barrier();
        }
    });

    println!(
        "measured {} events from {} threads on one processor",
        measured.records.len(),
        measured.n_threads
    );

    // Translate the 1-processor trace into idealized per-thread traces.
    let traces = translate(&measured, TranslateOptions::default()).unwrap();
    let stats = TraceStats::from_set(&traces);
    println!(
        "idealized parallel makespan: {:.3} ms ({} barriers, {} remote accesses)",
        stats.makespan().as_ms(),
        stats.barriers(),
        stats.total_remote_accesses()
    );

    // Extrapolate to different target environments — no further
    // measurement needed.
    for (name, params) in [
        (
            "distributed memory (20 MB/s)",
            machine::default_distributed(),
        ),
        ("shared memory", machine::shared_memory()),
        ("CM-5 (Table 3 parameters)", machine::cm5()),
        ("ideal machine", machine::ideal()),
    ] {
        let pred = extrapolate(&traces, &params).unwrap();
        println!(
            "{name:30} -> {:>9.3} ms  (utilization {:>5.1}%, comp/comm {:.1})",
            pred.exec_time().as_ms(),
            pred.utilization() * 100.0,
            pred.comp_comm_ratio()
        );
    }
}
