//! Run a what-if parameter grid through the parallel sweep engine.
//!
//! ```text
//! cargo run --release --example sweep
//! ```
//!
//! Extrapolates every benchmark across 1–32 processors under two
//! machine models at once, on all available cores, translating each
//! trace exactly once, and prints a speedup table per parameter set.

use perf_extrap::prelude::*;

fn main() {
    let procs = [1usize, 2, 4, 8, 16, 32];
    let param_sets = [
        ("distributed (20 MB/s)", machine::default_distributed()),
        ("CM-5 (Table 3)", machine::cm5()),
    ];

    // workloads × param_sets × procs, flattened in deterministic order.
    let jobs = SweepGrid::new()
        .workloads(Bench::all())
        .procs(procs)
        .param_sets(param_sets.iter().map(|(_, p)| p.clone()))
        .jobs();

    let workers = perf_extrap::models::sweep::default_workers();
    let cache = SharedTraceCache::new();
    let results = sweep(&jobs, workers, &cache, |(bench, n)| {
        translate(&bench.trace(*n, Scale::Tiny), TranslateOptions::default())
    });

    println!(
        "{} jobs on {workers} workers; {} traces translated (shared across parameter sets)\n",
        jobs.len(),
        cache.translations()
    );

    // Jobs nest as workload → param set → procs, so consecutive chunks
    // of `procs.len()` are one (benchmark, machine) speedup row.
    for (chunk_idx, chunk) in results.chunks(procs.len()).enumerate() {
        let (bench, _) = &jobs[chunk_idx * procs.len()].key;
        let (machine_label, _) = param_sets[chunk_idx % param_sets.len()];
        let times: Vec<TimeNs> = chunk
            .iter()
            .map(|r| {
                r.as_ref()
                    .expect("benchmark traces extrapolate")
                    .exec_time()
            })
            .collect();
        let speedups: Vec<String> = times
            .iter()
            .map(|t| format!("{:6.2}", times[0].as_ns() as f64 / t.as_ns().max(1) as f64))
            .collect();
        if chunk_idx % param_sets.len() == 0 {
            println!("{:8} speedup at P = {procs:?}", bench.name());
        }
        println!("         {:22} {}", machine_label, speedups.join(" "));
    }
}
