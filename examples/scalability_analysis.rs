//! Automatic scalability analysis from extrapolated predictions:
//! speedup, parallel efficiency, and the Karp–Flatt experimentally
//! determined serial fraction for every benchmark — without touching a
//! parallel machine.
//!
//! ```text
//! cargo run --release --example scalability_analysis
//! ```

use perf_extrap::prelude::*;

fn main() {
    let params = machine::default_distributed();
    let procs = [1usize, 2, 4, 8, 16, 32];

    for bench in Bench::all() {
        let samples: Vec<(usize, TimeNs)> = procs
            .iter()
            .map(|&n| {
                let ts =
                    translate(&bench.trace(n, Scale::Small), TranslateOptions::default()).unwrap();
                (n, extrapolate(&ts, &params).unwrap().exec_time())
            })
            .collect();
        let analysis = Scalability::from_times(samples);
        println!("== {} ==", bench.name());
        print!("{}", analysis.render());
        println!(
            "   -> best at P={}, efficiency >= 50% through P={}, saturates: {}",
            analysis.best_procs(),
            analysis
                .max_procs_at_efficiency(0.5)
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            analysis.saturates()
        );
        if let Some(f) = analysis.mean_serial_fraction() {
            println!("      mean Karp-Flatt serial fraction: {f:.4}");
        }
        println!();
    }
    println!(
        "A rising Karp-Flatt fraction with processor count indicates growing\n\
         communication/synchronization overhead rather than an inherently\n\
         serial code section — compare Embar (flat, tiny) against Sort."
    );
}
