//! The §3.3.1 clustering scenario: a multi-clustered machine with shared
//! memory inside each cluster and message passing between clusters.
//! Extrapolation answers "how big should the clusters be for this
//! program?" without the machine existing.
//!
//! ```text
//! cargo run --release --example clustered_machine
//! ```

use perf_extrap::prelude::*;

fn main() {
    let n_threads = 16;

    // Sort exchanges whole blocks at partner distances 2^j: small
    // distances stay inside a cluster, large ones cross the machine.
    let traces = translate(
        &Bench::Sort.trace(n_threads, Scale::Small),
        TranslateOptions::default(),
    )
    .unwrap();
    let params = machine::default_distributed();
    let flat = extrapolate(&traces, &params).unwrap().exec_time();

    println!(
        "Sort, {n_threads} processors, distributed machine: {:.3} ms (flat network)\n",
        flat.as_ms()
    );
    println!(
        "{:>14} {:>12} {:>12}",
        "cluster size", "time [ms]", "vs flat"
    );
    for cluster_size in [1usize, 2, 4, 8, 16] {
        let pred = extrapolate_clustered(
            &traces,
            &params,
            ClusterParams {
                cluster_size,
                ..ClusterParams::default()
            },
        )
        .unwrap();
        println!(
            "{:>14} {:>12.3} {:>11.1}%",
            cluster_size,
            pred.exec_time().as_ms(),
            (1.0 - pred.exec_time().as_ns() as f64 / flat.as_ns() as f64) * 100.0
        );
    }

    println!(
        "\nShared-memory islands absorb the short-distance exchanges; the\n\
         remaining inter-cluster messages still pay full message-passing\n\
         costs.  The curve quantifies how much locality each cluster size\n\
         captures — a design question extrapolation answers from one\n\
         uniprocessor measurement."
    );
}
