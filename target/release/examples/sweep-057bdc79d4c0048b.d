/root/repo/target/release/examples/sweep-057bdc79d4c0048b.d: examples/sweep.rs

/root/repo/target/release/examples/sweep-057bdc79d4c0048b: examples/sweep.rs

examples/sweep.rs:
