/root/repo/target/release/examples/sweep-2e432abe139f9d08.d: examples/sweep.rs

/root/repo/target/release/examples/sweep-2e432abe139f9d08: examples/sweep.rs

examples/sweep.rs:
