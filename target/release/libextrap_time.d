/root/repo/target/release/libextrap_time.rlib: /root/repo/crates/time/src/ids.rs /root/repo/crates/time/src/lib.rs /root/repo/crates/time/src/rate.rs /root/repo/crates/time/src/time.rs
