/root/repo/target/release/deps/extrap_lint-050276abefa2b369.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/fix.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/model.rs crates/lint/src/passes/soundness.rs crates/lint/src/passes/wellformed.rs crates/lint/src/render.rs crates/lint/src/stream.rs

/root/repo/target/release/deps/libextrap_lint-050276abefa2b369.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/fix.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/model.rs crates/lint/src/passes/soundness.rs crates/lint/src/passes/wellformed.rs crates/lint/src/render.rs crates/lint/src/stream.rs

/root/repo/target/release/deps/libextrap_lint-050276abefa2b369.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/fix.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/model.rs crates/lint/src/passes/soundness.rs crates/lint/src/passes/wellformed.rs crates/lint/src/render.rs crates/lint/src/stream.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/fix.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/model.rs:
crates/lint/src/passes/soundness.rs:
crates/lint/src/passes/wellformed.rs:
crates/lint/src/render.rs:
crates/lint/src/stream.rs:
