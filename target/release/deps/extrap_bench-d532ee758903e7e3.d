/root/repo/target/release/deps/extrap_bench-d532ee758903e7e3.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libextrap_bench-d532ee758903e7e3.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libextrap_bench-d532ee758903e7e3.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
