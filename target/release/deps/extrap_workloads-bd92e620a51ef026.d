/root/repo/target/release/deps/extrap_workloads-bd92e620a51ef026.d: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs

/root/repo/target/release/deps/libextrap_workloads-bd92e620a51ef026.rlib: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs

/root/repo/target/release/deps/libextrap_workloads-bd92e620a51ef026.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cyclic.rs:
crates/workloads/src/embar.rs:
crates/workloads/src/grid.rs:
crates/workloads/src/matmul.rs:
crates/workloads/src/mgrid.rs:
crates/workloads/src/poisson.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/sparse.rs:
crates/workloads/src/util.rs:
