/root/repo/target/release/deps/extrap_trace-6ab4a965668918f8.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/builder.rs crates/trace/src/bytesio.rs crates/trace/src/error.rs crates/trace/src/event.rs crates/trace/src/format.rs crates/trace/src/phases.rs crates/trace/src/reader.rs crates/trace/src/stats.rs crates/trace/src/stream.rs crates/trace/src/text.rs crates/trace/src/timeline.rs crates/trace/src/translate.rs crates/trace/src/writer.rs

/root/repo/target/release/deps/libextrap_trace-6ab4a965668918f8.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/builder.rs crates/trace/src/bytesio.rs crates/trace/src/error.rs crates/trace/src/event.rs crates/trace/src/format.rs crates/trace/src/phases.rs crates/trace/src/reader.rs crates/trace/src/stats.rs crates/trace/src/stream.rs crates/trace/src/text.rs crates/trace/src/timeline.rs crates/trace/src/translate.rs crates/trace/src/writer.rs

/root/repo/target/release/deps/libextrap_trace-6ab4a965668918f8.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/builder.rs crates/trace/src/bytesio.rs crates/trace/src/error.rs crates/trace/src/event.rs crates/trace/src/format.rs crates/trace/src/phases.rs crates/trace/src/reader.rs crates/trace/src/stats.rs crates/trace/src/stream.rs crates/trace/src/text.rs crates/trace/src/timeline.rs crates/trace/src/translate.rs crates/trace/src/writer.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/builder.rs:
crates/trace/src/bytesio.rs:
crates/trace/src/error.rs:
crates/trace/src/event.rs:
crates/trace/src/format.rs:
crates/trace/src/phases.rs:
crates/trace/src/reader.rs:
crates/trace/src/stats.rs:
crates/trace/src/stream.rs:
crates/trace/src/text.rs:
crates/trace/src/timeline.rs:
crates/trace/src/translate.rs:
crates/trace/src/writer.rs:
