/root/repo/target/release/deps/ablations-6b44286e98f21ed3.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-6b44286e98f21ed3: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
