/root/repo/target/release/deps/extrap_exp-e8d991768fc838a6.d: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/release/deps/libextrap_exp-e8d991768fc838a6.rlib: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/release/deps/libextrap_exp-e8d991768fc838a6.rmeta: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

crates/exp/src/lib.rs:
crates/exp/src/experiments.rs:
crates/exp/src/series.rs:
