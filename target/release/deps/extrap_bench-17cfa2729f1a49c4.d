/root/repo/target/release/deps/extrap_bench-17cfa2729f1a49c4.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/extrap_bench-17cfa2729f1a49c4: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
