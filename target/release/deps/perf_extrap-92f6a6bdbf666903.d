/root/repo/target/release/deps/perf_extrap-92f6a6bdbf666903.d: src/lib.rs

/root/repo/target/release/deps/libperf_extrap-92f6a6bdbf666903.rlib: src/lib.rs

/root/repo/target/release/deps/libperf_extrap-92f6a6bdbf666903.rmeta: src/lib.rs

src/lib.rs:
