/root/repo/target/release/deps/extrap_core-3462e7755e7f6ef9.d: crates/core/src/lib.rs crates/core/src/barrier/mod.rs crates/core/src/barrier/hardware.rs crates/core/src/barrier/linear.rs crates/core/src/barrier/tree.rs crates/core/src/cluster.rs crates/core/src/compare.rs crates/core/src/engine.rs crates/core/src/extrapolate.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/multithread.rs crates/core/src/network/mod.rs crates/core/src/network/contention.rs crates/core/src/network/state.rs crates/core/src/network/topology.rs crates/core/src/params.rs crates/core/src/processor.rs crates/core/src/scalability.rs crates/core/src/session.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libextrap_core-3462e7755e7f6ef9.rlib: crates/core/src/lib.rs crates/core/src/barrier/mod.rs crates/core/src/barrier/hardware.rs crates/core/src/barrier/linear.rs crates/core/src/barrier/tree.rs crates/core/src/cluster.rs crates/core/src/compare.rs crates/core/src/engine.rs crates/core/src/extrapolate.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/multithread.rs crates/core/src/network/mod.rs crates/core/src/network/contention.rs crates/core/src/network/state.rs crates/core/src/network/topology.rs crates/core/src/params.rs crates/core/src/processor.rs crates/core/src/scalability.rs crates/core/src/session.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libextrap_core-3462e7755e7f6ef9.rmeta: crates/core/src/lib.rs crates/core/src/barrier/mod.rs crates/core/src/barrier/hardware.rs crates/core/src/barrier/linear.rs crates/core/src/barrier/tree.rs crates/core/src/cluster.rs crates/core/src/compare.rs crates/core/src/engine.rs crates/core/src/extrapolate.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/multithread.rs crates/core/src/network/mod.rs crates/core/src/network/contention.rs crates/core/src/network/state.rs crates/core/src/network/topology.rs crates/core/src/params.rs crates/core/src/processor.rs crates/core/src/scalability.rs crates/core/src/session.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/barrier/mod.rs:
crates/core/src/barrier/hardware.rs:
crates/core/src/barrier/linear.rs:
crates/core/src/barrier/tree.rs:
crates/core/src/cluster.rs:
crates/core/src/compare.rs:
crates/core/src/engine.rs:
crates/core/src/extrapolate.rs:
crates/core/src/machine.rs:
crates/core/src/metrics.rs:
crates/core/src/multithread.rs:
crates/core/src/network/mod.rs:
crates/core/src/network/contention.rs:
crates/core/src/network/state.rs:
crates/core/src/network/topology.rs:
crates/core/src/params.rs:
crates/core/src/processor.rs:
crates/core/src/scalability.rs:
crates/core/src/session.rs:
crates/core/src/sweep.rs:
