/root/repo/target/release/deps/sweep-ea36b638ef187111.d: crates/bench/benches/sweep.rs

/root/repo/target/release/deps/sweep-ea36b638ef187111: crates/bench/benches/sweep.rs

crates/bench/benches/sweep.rs:
