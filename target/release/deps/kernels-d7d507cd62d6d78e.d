/root/repo/target/release/deps/kernels-d7d507cd62d6d78e.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-d7d507cd62d6d78e: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
