/root/repo/target/release/deps/ablations-b96012c8995b8a66.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-b96012c8995b8a66: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
