/root/repo/target/release/deps/extrap_sim-41da89d24c83963b.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs

/root/repo/target/release/deps/libextrap_sim-41da89d24c83963b.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs

/root/repo/target/release/deps/libextrap_sim-41da89d24c83963b.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fifo.rs:
crates/sim/src/rng.rs:
