/root/repo/target/release/deps/extrap-bb5bce1f2b4c9916.d: crates/cli/src/main.rs

/root/repo/target/release/deps/extrap-bb5bce1f2b4c9916: crates/cli/src/main.rs

crates/cli/src/main.rs:
