/root/repo/target/release/deps/pcpp_rt-884e5dcd2ddca347.d: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs

/root/repo/target/release/deps/libpcpp_rt-884e5dcd2ddca347.rlib: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs

/root/repo/target/release/deps/libpcpp_rt-884e5dcd2ddca347.rmeta: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs

crates/pcpp/src/lib.rs:
crates/pcpp/src/clock.rs:
crates/pcpp/src/collection.rs:
crates/pcpp/src/collective.rs:
crates/pcpp/src/distribution.rs:
crates/pcpp/src/element.rs:
crates/pcpp/src/instrument.rs:
crates/pcpp/src/program.rs:
crates/pcpp/src/scheduler.rs:
crates/pcpp/src/sync.rs:
