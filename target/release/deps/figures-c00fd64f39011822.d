/root/repo/target/release/deps/figures-c00fd64f39011822.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-c00fd64f39011822: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
