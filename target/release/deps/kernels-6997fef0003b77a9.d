/root/repo/target/release/deps/kernels-6997fef0003b77a9.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-6997fef0003b77a9: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
