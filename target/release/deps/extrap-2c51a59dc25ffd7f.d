/root/repo/target/release/deps/extrap-2c51a59dc25ffd7f.d: crates/cli/src/main.rs

/root/repo/target/release/deps/extrap-2c51a59dc25ffd7f: crates/cli/src/main.rs

crates/cli/src/main.rs:
