/root/repo/target/release/deps/extrap_exp-9296ef13346c65d1.d: crates/exp/src/main.rs

/root/repo/target/release/deps/extrap_exp-9296ef13346c65d1: crates/exp/src/main.rs

crates/exp/src/main.rs:
