/root/repo/target/release/deps/extrap_time-9e2c85d14dcc7f88.d: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs

/root/repo/target/release/deps/libextrap_time-9e2c85d14dcc7f88.rlib: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs

/root/repo/target/release/deps/libextrap_time-9e2c85d14dcc7f88.rmeta: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs

crates/time/src/lib.rs:
crates/time/src/ids.rs:
crates/time/src/rate.rs:
crates/time/src/time.rs:
