/root/repo/target/release/deps/figures-5bf4faadec7d3924.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-5bf4faadec7d3924: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
