/root/repo/target/release/deps/sweep-9accb23b16a07bf6.d: crates/bench/benches/sweep.rs

/root/repo/target/release/deps/sweep-9accb23b16a07bf6: crates/bench/benches/sweep.rs

crates/bench/benches/sweep.rs:
