/root/repo/target/release/deps/extrap_exp-f71c94ee3c2828c1.d: crates/exp/src/main.rs

/root/repo/target/release/deps/extrap_exp-f71c94ee3c2828c1: crates/exp/src/main.rs

crates/exp/src/main.rs:
