/root/repo/target/release/deps/extrap_bench-0f7507528dc9f8de.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/extrap_bench-0f7507528dc9f8de: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
