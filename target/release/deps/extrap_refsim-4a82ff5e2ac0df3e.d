/root/repo/target/release/deps/extrap_refsim-4a82ff5e2ac0df3e.d: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs

/root/repo/target/release/deps/libextrap_refsim-4a82ff5e2ac0df3e.rlib: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs

/root/repo/target/release/deps/libextrap_refsim-4a82ff5e2ac0df3e.rmeta: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs

crates/refsim/src/lib.rs:
crates/refsim/src/link.rs:
crates/refsim/src/machine.rs:
crates/refsim/src/route.rs:
