/root/repo/target/release/deps/extrap_exp-49fcdf2d86efed44.d: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/release/deps/libextrap_exp-49fcdf2d86efed44.rlib: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/release/deps/libextrap_exp-49fcdf2d86efed44.rmeta: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

crates/exp/src/lib.rs:
crates/exp/src/experiments.rs:
crates/exp/src/series.rs:
