/root/repo/target/release/deps/extrap_bench-542bdd2dfc286e8c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libextrap_bench-542bdd2dfc286e8c.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libextrap_bench-542bdd2dfc286e8c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
