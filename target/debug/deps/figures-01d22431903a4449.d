/root/repo/target/debug/deps/figures-01d22431903a4449.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-01d22431903a4449: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
