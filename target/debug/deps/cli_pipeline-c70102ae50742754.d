/root/repo/target/debug/deps/cli_pipeline-c70102ae50742754.d: crates/cli/tests/cli_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcli_pipeline-c70102ae50742754.rmeta: crates/cli/tests/cli_pipeline.rs Cargo.toml

crates/cli/tests/cli_pipeline.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_extrap=placeholder:extrap
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
