/root/repo/target/debug/deps/corrupted_fixtures-405ec499588e70c2.d: crates/lint/tests/corrupted_fixtures.rs Cargo.toml

/root/repo/target/debug/deps/libcorrupted_fixtures-405ec499588e70c2.rmeta: crates/lint/tests/corrupted_fixtures.rs Cargo.toml

crates/lint/tests/corrupted_fixtures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
