/root/repo/target/debug/deps/paper_results-ccf768d423618ec2.d: tests/paper_results.rs

/root/repo/target/debug/deps/paper_results-ccf768d423618ec2: tests/paper_results.rs

tests/paper_results.rs:
