/root/repo/target/debug/deps/extrap_bench-23539393b520fc1e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_bench-23539393b520fc1e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
