/root/repo/target/debug/deps/extrap_refsim-909b3ad1a805121c.d: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs

/root/repo/target/debug/deps/extrap_refsim-909b3ad1a805121c: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs

crates/refsim/src/lib.rs:
crates/refsim/src/link.rs:
crates/refsim/src/machine.rs:
crates/refsim/src/route.rs:
