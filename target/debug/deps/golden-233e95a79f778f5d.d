/root/repo/target/debug/deps/golden-233e95a79f778f5d.d: crates/workloads/tests/golden.rs

/root/repo/target/debug/deps/golden-233e95a79f778f5d: crates/workloads/tests/golden.rs

crates/workloads/tests/golden.rs:
