/root/repo/target/debug/deps/extrap_exp-4390348055b08028.d: crates/exp/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_exp-4390348055b08028.rmeta: crates/exp/src/main.rs Cargo.toml

crates/exp/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
