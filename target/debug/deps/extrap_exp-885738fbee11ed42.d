/root/repo/target/debug/deps/extrap_exp-885738fbee11ed42.d: crates/exp/src/main.rs

/root/repo/target/debug/deps/extrap_exp-885738fbee11ed42: crates/exp/src/main.rs

crates/exp/src/main.rs:
