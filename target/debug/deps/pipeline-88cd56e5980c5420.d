/root/repo/target/debug/deps/pipeline-88cd56e5980c5420.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-88cd56e5980c5420: tests/pipeline.rs

tests/pipeline.rs:
