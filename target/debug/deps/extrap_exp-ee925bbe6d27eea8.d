/root/repo/target/debug/deps/extrap_exp-ee925bbe6d27eea8.d: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/debug/deps/extrap_exp-ee925bbe6d27eea8: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

crates/exp/src/lib.rs:
crates/exp/src/experiments.rs:
crates/exp/src/series.rs:
