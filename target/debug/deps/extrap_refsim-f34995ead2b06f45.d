/root/repo/target/debug/deps/extrap_refsim-f34995ead2b06f45.d: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs

/root/repo/target/debug/deps/libextrap_refsim-f34995ead2b06f45.rlib: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs

/root/repo/target/debug/deps/libextrap_refsim-f34995ead2b06f45.rmeta: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs

crates/refsim/src/lib.rs:
crates/refsim/src/link.rs:
crates/refsim/src/machine.rs:
crates/refsim/src/route.rs:
