/root/repo/target/debug/deps/determinism-8c621c8637d37980.d: crates/exp/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-8c621c8637d37980.rmeta: crates/exp/tests/determinism.rs Cargo.toml

crates/exp/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
