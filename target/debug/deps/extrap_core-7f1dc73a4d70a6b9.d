/root/repo/target/debug/deps/extrap_core-7f1dc73a4d70a6b9.d: crates/core/src/lib.rs crates/core/src/barrier/mod.rs crates/core/src/barrier/hardware.rs crates/core/src/barrier/linear.rs crates/core/src/barrier/tree.rs crates/core/src/cluster.rs crates/core/src/compare.rs crates/core/src/engine.rs crates/core/src/extrapolate.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/multithread.rs crates/core/src/network/mod.rs crates/core/src/network/contention.rs crates/core/src/network/state.rs crates/core/src/network/topology.rs crates/core/src/params.rs crates/core/src/processor.rs crates/core/src/scalability.rs crates/core/src/session.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_core-7f1dc73a4d70a6b9.rmeta: crates/core/src/lib.rs crates/core/src/barrier/mod.rs crates/core/src/barrier/hardware.rs crates/core/src/barrier/linear.rs crates/core/src/barrier/tree.rs crates/core/src/cluster.rs crates/core/src/compare.rs crates/core/src/engine.rs crates/core/src/extrapolate.rs crates/core/src/machine.rs crates/core/src/metrics.rs crates/core/src/multithread.rs crates/core/src/network/mod.rs crates/core/src/network/contention.rs crates/core/src/network/state.rs crates/core/src/network/topology.rs crates/core/src/params.rs crates/core/src/processor.rs crates/core/src/scalability.rs crates/core/src/session.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/barrier/mod.rs:
crates/core/src/barrier/hardware.rs:
crates/core/src/barrier/linear.rs:
crates/core/src/barrier/tree.rs:
crates/core/src/cluster.rs:
crates/core/src/compare.rs:
crates/core/src/engine.rs:
crates/core/src/extrapolate.rs:
crates/core/src/machine.rs:
crates/core/src/metrics.rs:
crates/core/src/multithread.rs:
crates/core/src/network/mod.rs:
crates/core/src/network/contention.rs:
crates/core/src/network/state.rs:
crates/core/src/network/topology.rs:
crates/core/src/params.rs:
crates/core/src/processor.rs:
crates/core/src/scalability.rs:
crates/core/src/session.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
