/root/repo/target/debug/deps/kernels-fbe2a65d55c1670f.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-fbe2a65d55c1670f: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
