/root/repo/target/debug/deps/model_equations-aa093c50f72dc51e.d: crates/core/tests/model_equations.rs

/root/repo/target/debug/deps/model_equations-aa093c50f72dc51e: crates/core/tests/model_equations.rs

crates/core/tests/model_equations.rs:
