/root/repo/target/debug/deps/stream_robustness-1b284d83eb0ed44a.d: crates/trace/tests/stream_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libstream_robustness-1b284d83eb0ed44a.rmeta: crates/trace/tests/stream_robustness.rs Cargo.toml

crates/trace/tests/stream_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
