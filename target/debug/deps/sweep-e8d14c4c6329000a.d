/root/repo/target/debug/deps/sweep-e8d14c4c6329000a.d: crates/bench/benches/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-e8d14c4c6329000a.rmeta: crates/bench/benches/sweep.rs Cargo.toml

crates/bench/benches/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
