/root/repo/target/debug/deps/determinism-31ab3613f0e7a970.d: crates/exp/tests/determinism.rs

/root/repo/target/debug/deps/determinism-31ab3613f0e7a970: crates/exp/tests/determinism.rs

crates/exp/tests/determinism.rs:
