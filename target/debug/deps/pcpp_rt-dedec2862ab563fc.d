/root/repo/target/debug/deps/pcpp_rt-dedec2862ab563fc.d: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs

/root/repo/target/debug/deps/libpcpp_rt-dedec2862ab563fc.rlib: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs

/root/repo/target/debug/deps/libpcpp_rt-dedec2862ab563fc.rmeta: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs

crates/pcpp/src/lib.rs:
crates/pcpp/src/clock.rs:
crates/pcpp/src/collection.rs:
crates/pcpp/src/collective.rs:
crates/pcpp/src/distribution.rs:
crates/pcpp/src/element.rs:
crates/pcpp/src/instrument.rs:
crates/pcpp/src/program.rs:
crates/pcpp/src/scheduler.rs:
crates/pcpp/src/sync.rs:
