/root/repo/target/debug/deps/extrap-810cc3eb1f114511.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/extrap-810cc3eb1f114511: crates/cli/src/main.rs

crates/cli/src/main.rs:
