/root/repo/target/debug/deps/engine_properties-13be1f376ea4997f.d: crates/sim/tests/engine_properties.rs Cargo.toml

/root/repo/target/debug/deps/libengine_properties-13be1f376ea4997f.rmeta: crates/sim/tests/engine_properties.rs Cargo.toml

crates/sim/tests/engine_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
