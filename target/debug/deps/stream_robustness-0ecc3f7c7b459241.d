/root/repo/target/debug/deps/stream_robustness-0ecc3f7c7b459241.d: crates/trace/tests/stream_robustness.rs

/root/repo/target/debug/deps/stream_robustness-0ecc3f7c7b459241: crates/trace/tests/stream_robustness.rs

crates/trace/tests/stream_robustness.rs:
