/root/repo/target/debug/deps/model_properties-31358890559d4960.d: tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-31358890559d4960.rmeta: tests/model_properties.rs Cargo.toml

tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
