/root/repo/target/debug/deps/extrap_workloads-979e90e5e7e6b1ca.d: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_workloads-979e90e5e7e6b1ca.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/cyclic.rs:
crates/workloads/src/embar.rs:
crates/workloads/src/grid.rs:
crates/workloads/src/matmul.rs:
crates/workloads/src/mgrid.rs:
crates/workloads/src/poisson.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/sparse.rs:
crates/workloads/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
