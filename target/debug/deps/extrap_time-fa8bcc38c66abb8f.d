/root/repo/target/debug/deps/extrap_time-fa8bcc38c66abb8f.d: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_time-fa8bcc38c66abb8f.rmeta: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs Cargo.toml

crates/time/src/lib.rs:
crates/time/src/ids.rs:
crates/time/src/rate.rs:
crates/time/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
