/root/repo/target/debug/deps/determinism-a629a211d9840d71.d: crates/exp/tests/determinism.rs

/root/repo/target/debug/deps/determinism-a629a211d9840d71: crates/exp/tests/determinism.rs

crates/exp/tests/determinism.rs:
