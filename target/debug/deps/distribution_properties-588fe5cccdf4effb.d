/root/repo/target/debug/deps/distribution_properties-588fe5cccdf4effb.d: crates/pcpp/tests/distribution_properties.rs

/root/repo/target/debug/deps/distribution_properties-588fe5cccdf4effb: crates/pcpp/tests/distribution_properties.rs

crates/pcpp/tests/distribution_properties.rs:
