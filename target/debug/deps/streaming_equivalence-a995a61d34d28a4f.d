/root/repo/target/debug/deps/streaming_equivalence-a995a61d34d28a4f.d: crates/lint/tests/streaming_equivalence.rs

/root/repo/target/debug/deps/streaming_equivalence-a995a61d34d28a4f: crates/lint/tests/streaming_equivalence.rs

crates/lint/tests/streaming_equivalence.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
