/root/repo/target/debug/deps/engine_behavior-0da47c975870642c.d: crates/core/tests/engine_behavior.rs

/root/repo/target/debug/deps/engine_behavior-0da47c975870642c: crates/core/tests/engine_behavior.rs

crates/core/tests/engine_behavior.rs:
