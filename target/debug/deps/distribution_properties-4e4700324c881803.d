/root/repo/target/debug/deps/distribution_properties-4e4700324c881803.d: crates/pcpp/tests/distribution_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdistribution_properties-4e4700324c881803.rmeta: crates/pcpp/tests/distribution_properties.rs Cargo.toml

crates/pcpp/tests/distribution_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
