/root/repo/target/debug/deps/golden-7c0a842a035784bd.d: crates/workloads/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-7c0a842a035784bd.rmeta: crates/workloads/tests/golden.rs Cargo.toml

crates/workloads/tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
