/root/repo/target/debug/deps/extrap_exp-0ff64af2438d2848.d: crates/exp/src/main.rs

/root/repo/target/debug/deps/extrap_exp-0ff64af2438d2848: crates/exp/src/main.rs

crates/exp/src/main.rs:
