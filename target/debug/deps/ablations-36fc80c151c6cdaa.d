/root/repo/target/debug/deps/ablations-36fc80c151c6cdaa.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-36fc80c151c6cdaa: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
