/root/repo/target/debug/deps/perf_extrap-ff8deaecab951bc0.d: src/lib.rs

/root/repo/target/debug/deps/perf_extrap-ff8deaecab951bc0: src/lib.rs

src/lib.rs:
