/root/repo/target/debug/deps/extrap-3546e366112cf730.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libextrap-3546e366112cf730.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
