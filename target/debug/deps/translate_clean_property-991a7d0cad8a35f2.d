/root/repo/target/debug/deps/translate_clean_property-991a7d0cad8a35f2.d: crates/lint/tests/translate_clean_property.rs

/root/repo/target/debug/deps/translate_clean_property-991a7d0cad8a35f2: crates/lint/tests/translate_clean_property.rs

crates/lint/tests/translate_clean_property.rs:
