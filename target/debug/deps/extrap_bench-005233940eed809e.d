/root/repo/target/debug/deps/extrap_bench-005233940eed809e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libextrap_bench-005233940eed809e.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libextrap_bench-005233940eed809e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
