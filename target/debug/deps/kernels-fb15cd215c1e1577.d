/root/repo/target/debug/deps/kernels-fb15cd215c1e1577.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-fb15cd215c1e1577.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
