/root/repo/target/debug/deps/extrap_bench-3cf45afafb757c1a.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/extrap_bench-3cf45afafb757c1a: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
