/root/repo/target/debug/deps/pipeline-5402bec6da1dcf34.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-5402bec6da1dcf34.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
