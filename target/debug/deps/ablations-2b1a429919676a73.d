/root/repo/target/debug/deps/ablations-2b1a429919676a73.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-2b1a429919676a73.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
