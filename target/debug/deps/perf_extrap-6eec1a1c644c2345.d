/root/repo/target/debug/deps/perf_extrap-6eec1a1c644c2345.d: src/lib.rs

/root/repo/target/debug/deps/perf_extrap-6eec1a1c644c2345: src/lib.rs

src/lib.rs:
