/root/repo/target/debug/deps/paper_results-1ca9b0ea897a49da.d: tests/paper_results.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_results-1ca9b0ea897a49da.rmeta: tests/paper_results.rs Cargo.toml

tests/paper_results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
