/root/repo/target/debug/deps/extrap_sim-31d385a42f31dbb4.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_sim-31d385a42f31dbb4.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fifo.rs:
crates/sim/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
