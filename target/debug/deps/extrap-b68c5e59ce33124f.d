/root/repo/target/debug/deps/extrap-b68c5e59ce33124f.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libextrap-b68c5e59ce33124f.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
