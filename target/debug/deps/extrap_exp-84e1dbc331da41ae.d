/root/repo/target/debug/deps/extrap_exp-84e1dbc331da41ae.d: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/debug/deps/extrap_exp-84e1dbc331da41ae: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

crates/exp/src/lib.rs:
crates/exp/src/experiments.rs:
crates/exp/src/series.rs:
