/root/repo/target/debug/deps/extrap_exp-7de8d746f720530f.d: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_exp-7de8d746f720530f.rmeta: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs Cargo.toml

crates/exp/src/lib.rs:
crates/exp/src/experiments.rs:
crates/exp/src/series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
