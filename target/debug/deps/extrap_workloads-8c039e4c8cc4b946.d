/root/repo/target/debug/deps/extrap_workloads-8c039e4c8cc4b946.d: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs

/root/repo/target/debug/deps/extrap_workloads-8c039e4c8cc4b946: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cyclic.rs:
crates/workloads/src/embar.rs:
crates/workloads/src/grid.rs:
crates/workloads/src/matmul.rs:
crates/workloads/src/mgrid.rs:
crates/workloads/src/poisson.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/sparse.rs:
crates/workloads/src/util.rs:
