/root/repo/target/debug/deps/extrap-0872ea3521505305.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libextrap-0872ea3521505305.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
