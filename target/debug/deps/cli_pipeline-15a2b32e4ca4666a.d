/root/repo/target/debug/deps/cli_pipeline-15a2b32e4ca4666a.d: crates/cli/tests/cli_pipeline.rs

/root/repo/target/debug/deps/cli_pipeline-15a2b32e4ca4666a: crates/cli/tests/cli_pipeline.rs

crates/cli/tests/cli_pipeline.rs:

# env-dep:CARGO_BIN_EXE_extrap=/root/repo/target/debug/extrap
