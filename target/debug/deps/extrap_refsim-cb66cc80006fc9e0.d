/root/repo/target/debug/deps/extrap_refsim-cb66cc80006fc9e0.d: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_refsim-cb66cc80006fc9e0.rmeta: crates/refsim/src/lib.rs crates/refsim/src/link.rs crates/refsim/src/machine.rs crates/refsim/src/route.rs Cargo.toml

crates/refsim/src/lib.rs:
crates/refsim/src/link.rs:
crates/refsim/src/machine.rs:
crates/refsim/src/route.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
