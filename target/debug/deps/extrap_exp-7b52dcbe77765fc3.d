/root/repo/target/debug/deps/extrap_exp-7b52dcbe77765fc3.d: crates/exp/src/main.rs

/root/repo/target/debug/deps/extrap_exp-7b52dcbe77765fc3: crates/exp/src/main.rs

crates/exp/src/main.rs:
