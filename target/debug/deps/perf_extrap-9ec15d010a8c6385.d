/root/repo/target/debug/deps/perf_extrap-9ec15d010a8c6385.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libperf_extrap-9ec15d010a8c6385.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
