/root/repo/target/debug/deps/extrap_time-0e2208294a1eb097.d: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs

/root/repo/target/debug/deps/libextrap_time-0e2208294a1eb097.rlib: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs

/root/repo/target/debug/deps/libextrap_time-0e2208294a1eb097.rmeta: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs

crates/time/src/lib.rs:
crates/time/src/ids.rs:
crates/time/src/rate.rs:
crates/time/src/time.rs:
