/root/repo/target/debug/deps/extrap_time-1ed220337b4efc91.d: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs

/root/repo/target/debug/deps/extrap_time-1ed220337b4efc91: crates/time/src/lib.rs crates/time/src/ids.rs crates/time/src/rate.rs crates/time/src/time.rs

crates/time/src/lib.rs:
crates/time/src/ids.rs:
crates/time/src/rate.rs:
crates/time/src/time.rs:
