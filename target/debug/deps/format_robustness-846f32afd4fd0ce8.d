/root/repo/target/debug/deps/format_robustness-846f32afd4fd0ce8.d: crates/trace/tests/format_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libformat_robustness-846f32afd4fd0ce8.rmeta: crates/trace/tests/format_robustness.rs Cargo.toml

crates/trace/tests/format_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
