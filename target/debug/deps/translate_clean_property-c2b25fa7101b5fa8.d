/root/repo/target/debug/deps/translate_clean_property-c2b25fa7101b5fa8.d: crates/lint/tests/translate_clean_property.rs Cargo.toml

/root/repo/target/debug/deps/libtranslate_clean_property-c2b25fa7101b5fa8.rmeta: crates/lint/tests/translate_clean_property.rs Cargo.toml

crates/lint/tests/translate_clean_property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
