/root/repo/target/debug/deps/perf_extrap-e943972838201347.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libperf_extrap-e943972838201347.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
