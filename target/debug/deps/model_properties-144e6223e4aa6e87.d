/root/repo/target/debug/deps/model_properties-144e6223e4aa6e87.d: tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-144e6223e4aa6e87: tests/model_properties.rs

tests/model_properties.rs:
