/root/repo/target/debug/deps/link_properties-f285885f3284b07a.d: crates/refsim/tests/link_properties.rs Cargo.toml

/root/repo/target/debug/deps/liblink_properties-f285885f3284b07a.rmeta: crates/refsim/tests/link_properties.rs Cargo.toml

crates/refsim/tests/link_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
