/root/repo/target/debug/deps/fix_roundtrip-10ebfe3f30a5ece5.d: crates/lint/tests/fix_roundtrip.rs

/root/repo/target/debug/deps/fix_roundtrip-10ebfe3f30a5ece5: crates/lint/tests/fix_roundtrip.rs

crates/lint/tests/fix_roundtrip.rs:
