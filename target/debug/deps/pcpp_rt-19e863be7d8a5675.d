/root/repo/target/debug/deps/pcpp_rt-19e863be7d8a5675.d: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libpcpp_rt-19e863be7d8a5675.rmeta: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs Cargo.toml

crates/pcpp/src/lib.rs:
crates/pcpp/src/clock.rs:
crates/pcpp/src/collection.rs:
crates/pcpp/src/collective.rs:
crates/pcpp/src/distribution.rs:
crates/pcpp/src/element.rs:
crates/pcpp/src/instrument.rs:
crates/pcpp/src/program.rs:
crates/pcpp/src/scheduler.rs:
crates/pcpp/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
