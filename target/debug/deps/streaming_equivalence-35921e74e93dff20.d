/root/repo/target/debug/deps/streaming_equivalence-35921e74e93dff20.d: crates/lint/tests/streaming_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_equivalence-35921e74e93dff20.rmeta: crates/lint/tests/streaming_equivalence.rs Cargo.toml

crates/lint/tests/streaming_equivalence.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
