/root/repo/target/debug/deps/pipeline-629f97d994d89948.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-629f97d994d89948: tests/pipeline.rs

tests/pipeline.rs:
