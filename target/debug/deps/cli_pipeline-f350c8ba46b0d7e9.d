/root/repo/target/debug/deps/cli_pipeline-f350c8ba46b0d7e9.d: crates/cli/tests/cli_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libcli_pipeline-f350c8ba46b0d7e9.rmeta: crates/cli/tests/cli_pipeline.rs Cargo.toml

crates/cli/tests/cli_pipeline.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_extrap=placeholder:extrap
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
