/root/repo/target/debug/deps/extrap_trace-9ee4bbee865f32a5.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/builder.rs crates/trace/src/bytesio.rs crates/trace/src/error.rs crates/trace/src/event.rs crates/trace/src/format.rs crates/trace/src/phases.rs crates/trace/src/reader.rs crates/trace/src/stats.rs crates/trace/src/stream.rs crates/trace/src/text.rs crates/trace/src/timeline.rs crates/trace/src/translate.rs crates/trace/src/writer.rs

/root/repo/target/debug/deps/extrap_trace-9ee4bbee865f32a5: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/builder.rs crates/trace/src/bytesio.rs crates/trace/src/error.rs crates/trace/src/event.rs crates/trace/src/format.rs crates/trace/src/phases.rs crates/trace/src/reader.rs crates/trace/src/stats.rs crates/trace/src/stream.rs crates/trace/src/text.rs crates/trace/src/timeline.rs crates/trace/src/translate.rs crates/trace/src/writer.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/builder.rs:
crates/trace/src/bytesio.rs:
crates/trace/src/error.rs:
crates/trace/src/event.rs:
crates/trace/src/format.rs:
crates/trace/src/phases.rs:
crates/trace/src/reader.rs:
crates/trace/src/stats.rs:
crates/trace/src/stream.rs:
crates/trace/src/text.rs:
crates/trace/src/timeline.rs:
crates/trace/src/translate.rs:
crates/trace/src/writer.rs:
