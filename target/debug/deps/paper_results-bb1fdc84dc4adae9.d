/root/repo/target/debug/deps/paper_results-bb1fdc84dc4adae9.d: tests/paper_results.rs

/root/repo/target/debug/deps/paper_results-bb1fdc84dc4adae9: tests/paper_results.rs

tests/paper_results.rs:
