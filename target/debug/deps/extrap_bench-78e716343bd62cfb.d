/root/repo/target/debug/deps/extrap_bench-78e716343bd62cfb.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libextrap_bench-78e716343bd62cfb.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libextrap_bench-78e716343bd62cfb.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
