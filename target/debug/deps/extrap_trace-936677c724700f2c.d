/root/repo/target/debug/deps/extrap_trace-936677c724700f2c.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/builder.rs crates/trace/src/bytesio.rs crates/trace/src/error.rs crates/trace/src/event.rs crates/trace/src/format.rs crates/trace/src/phases.rs crates/trace/src/reader.rs crates/trace/src/stats.rs crates/trace/src/stream.rs crates/trace/src/text.rs crates/trace/src/timeline.rs crates/trace/src/translate.rs crates/trace/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_trace-936677c724700f2c.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/builder.rs crates/trace/src/bytesio.rs crates/trace/src/error.rs crates/trace/src/event.rs crates/trace/src/format.rs crates/trace/src/phases.rs crates/trace/src/reader.rs crates/trace/src/stats.rs crates/trace/src/stream.rs crates/trace/src/text.rs crates/trace/src/timeline.rs crates/trace/src/translate.rs crates/trace/src/writer.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/builder.rs:
crates/trace/src/bytesio.rs:
crates/trace/src/error.rs:
crates/trace/src/event.rs:
crates/trace/src/format.rs:
crates/trace/src/phases.rs:
crates/trace/src/reader.rs:
crates/trace/src/stats.rs:
crates/trace/src/stream.rs:
crates/trace/src/text.rs:
crates/trace/src/timeline.rs:
crates/trace/src/translate.rs:
crates/trace/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
