/root/repo/target/debug/deps/corrupted_fixtures-0c8a85d348884de0.d: crates/lint/tests/corrupted_fixtures.rs

/root/repo/target/debug/deps/corrupted_fixtures-0c8a85d348884de0: crates/lint/tests/corrupted_fixtures.rs

crates/lint/tests/corrupted_fixtures.rs:
