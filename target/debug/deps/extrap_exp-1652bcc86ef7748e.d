/root/repo/target/debug/deps/extrap_exp-1652bcc86ef7748e.d: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_exp-1652bcc86ef7748e.rmeta: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs Cargo.toml

crates/exp/src/lib.rs:
crates/exp/src/experiments.rs:
crates/exp/src/series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
