/root/repo/target/debug/deps/extrap-3c947fc078087e96.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/extrap-3c947fc078087e96: crates/cli/src/main.rs

crates/cli/src/main.rs:
