/root/repo/target/debug/deps/extrap_exp-d1666072641d06f2.d: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/debug/deps/libextrap_exp-d1666072641d06f2.rlib: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/debug/deps/libextrap_exp-d1666072641d06f2.rmeta: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

crates/exp/src/lib.rs:
crates/exp/src/experiments.rs:
crates/exp/src/series.rs:
