/root/repo/target/debug/deps/extrap_bench-de21c1339d570f4d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/extrap_bench-de21c1339d570f4d: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
