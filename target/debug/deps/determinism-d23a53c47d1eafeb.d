/root/repo/target/debug/deps/determinism-d23a53c47d1eafeb.d: crates/exp/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-d23a53c47d1eafeb.rmeta: crates/exp/tests/determinism.rs Cargo.toml

crates/exp/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
