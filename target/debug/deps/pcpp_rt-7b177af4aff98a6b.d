/root/repo/target/debug/deps/pcpp_rt-7b177af4aff98a6b.d: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs

/root/repo/target/debug/deps/pcpp_rt-7b177af4aff98a6b: crates/pcpp/src/lib.rs crates/pcpp/src/clock.rs crates/pcpp/src/collection.rs crates/pcpp/src/collective.rs crates/pcpp/src/distribution.rs crates/pcpp/src/element.rs crates/pcpp/src/instrument.rs crates/pcpp/src/program.rs crates/pcpp/src/scheduler.rs crates/pcpp/src/sync.rs

crates/pcpp/src/lib.rs:
crates/pcpp/src/clock.rs:
crates/pcpp/src/collection.rs:
crates/pcpp/src/collective.rs:
crates/pcpp/src/distribution.rs:
crates/pcpp/src/element.rs:
crates/pcpp/src/instrument.rs:
crates/pcpp/src/program.rs:
crates/pcpp/src/scheduler.rs:
crates/pcpp/src/sync.rs:
