/root/repo/target/debug/deps/cli_pipeline-21bc04512de40062.d: crates/cli/tests/cli_pipeline.rs

/root/repo/target/debug/deps/cli_pipeline-21bc04512de40062: crates/cli/tests/cli_pipeline.rs

crates/cli/tests/cli_pipeline.rs:

# env-dep:CARGO_BIN_EXE_extrap=/root/repo/target/debug/extrap
