/root/repo/target/debug/deps/extrap_exp-6ec7d22dbcc557e1.d: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/debug/deps/libextrap_exp-6ec7d22dbcc557e1.rlib: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

/root/repo/target/debug/deps/libextrap_exp-6ec7d22dbcc557e1.rmeta: crates/exp/src/lib.rs crates/exp/src/experiments.rs crates/exp/src/series.rs

crates/exp/src/lib.rs:
crates/exp/src/experiments.rs:
crates/exp/src/series.rs:
