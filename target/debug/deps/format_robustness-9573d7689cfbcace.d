/root/repo/target/debug/deps/format_robustness-9573d7689cfbcace.d: crates/trace/tests/format_robustness.rs

/root/repo/target/debug/deps/format_robustness-9573d7689cfbcace: crates/trace/tests/format_robustness.rs

crates/trace/tests/format_robustness.rs:
