/root/repo/target/debug/deps/extrap_sim-22e7602b93af29a3.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs

/root/repo/target/debug/deps/extrap_sim-22e7602b93af29a3: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fifo.rs:
crates/sim/src/rng.rs:
