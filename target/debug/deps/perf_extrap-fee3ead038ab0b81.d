/root/repo/target/debug/deps/perf_extrap-fee3ead038ab0b81.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libperf_extrap-fee3ead038ab0b81.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
