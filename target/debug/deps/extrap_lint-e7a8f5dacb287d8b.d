/root/repo/target/debug/deps/extrap_lint-e7a8f5dacb287d8b.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/fix.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/model.rs crates/lint/src/passes/soundness.rs crates/lint/src/passes/wellformed.rs crates/lint/src/render.rs crates/lint/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_lint-e7a8f5dacb287d8b.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/fix.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/model.rs crates/lint/src/passes/soundness.rs crates/lint/src/passes/wellformed.rs crates/lint/src/render.rs crates/lint/src/stream.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/fix.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/model.rs:
crates/lint/src/passes/soundness.rs:
crates/lint/src/passes/wellformed.rs:
crates/lint/src/render.rs:
crates/lint/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
