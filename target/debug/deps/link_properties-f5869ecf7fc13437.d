/root/repo/target/debug/deps/link_properties-f5869ecf7fc13437.d: crates/refsim/tests/link_properties.rs

/root/repo/target/debug/deps/link_properties-f5869ecf7fc13437: crates/refsim/tests/link_properties.rs

crates/refsim/tests/link_properties.rs:
