/root/repo/target/debug/deps/sweep-abdd5599e041729c.d: crates/bench/benches/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-abdd5599e041729c.rmeta: crates/bench/benches/sweep.rs Cargo.toml

crates/bench/benches/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
