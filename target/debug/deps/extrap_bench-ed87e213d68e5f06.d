/root/repo/target/debug/deps/extrap_bench-ed87e213d68e5f06.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libextrap_bench-ed87e213d68e5f06.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
