/root/repo/target/debug/deps/extrap_sim-093257fc318fc693.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs

/root/repo/target/debug/deps/libextrap_sim-093257fc318fc693.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs

/root/repo/target/debug/deps/libextrap_sim-093257fc318fc693.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/fifo.rs crates/sim/src/rng.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/fifo.rs:
crates/sim/src/rng.rs:
