/root/repo/target/debug/deps/extrap_lint-2ee53a712c9f07f8.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/fix.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/model.rs crates/lint/src/passes/soundness.rs crates/lint/src/passes/wellformed.rs crates/lint/src/render.rs crates/lint/src/stream.rs

/root/repo/target/debug/deps/extrap_lint-2ee53a712c9f07f8: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/fix.rs crates/lint/src/passes/mod.rs crates/lint/src/passes/model.rs crates/lint/src/passes/soundness.rs crates/lint/src/passes/wellformed.rs crates/lint/src/render.rs crates/lint/src/stream.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/fix.rs:
crates/lint/src/passes/mod.rs:
crates/lint/src/passes/model.rs:
crates/lint/src/passes/soundness.rs:
crates/lint/src/passes/wellformed.rs:
crates/lint/src/render.rs:
crates/lint/src/stream.rs:
