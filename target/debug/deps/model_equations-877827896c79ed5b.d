/root/repo/target/debug/deps/model_equations-877827896c79ed5b.d: crates/core/tests/model_equations.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_equations-877827896c79ed5b.rmeta: crates/core/tests/model_equations.rs Cargo.toml

crates/core/tests/model_equations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
