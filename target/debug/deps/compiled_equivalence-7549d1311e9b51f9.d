/root/repo/target/debug/deps/compiled_equivalence-7549d1311e9b51f9.d: crates/core/tests/compiled_equivalence.rs

/root/repo/target/debug/deps/compiled_equivalence-7549d1311e9b51f9: crates/core/tests/compiled_equivalence.rs

crates/core/tests/compiled_equivalence.rs:
