/root/repo/target/debug/deps/compiled_equivalence-b6b87f5ee743f9db.d: crates/core/tests/compiled_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcompiled_equivalence-b6b87f5ee743f9db.rmeta: crates/core/tests/compiled_equivalence.rs Cargo.toml

crates/core/tests/compiled_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
