/root/repo/target/debug/deps/perf_extrap-da2767788236dc48.d: src/lib.rs

/root/repo/target/debug/deps/libperf_extrap-da2767788236dc48.rlib: src/lib.rs

/root/repo/target/debug/deps/libperf_extrap-da2767788236dc48.rmeta: src/lib.rs

src/lib.rs:
