/root/repo/target/debug/deps/extrap_workloads-f63e215789a80337.d: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs

/root/repo/target/debug/deps/libextrap_workloads-f63e215789a80337.rlib: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs

/root/repo/target/debug/deps/libextrap_workloads-f63e215789a80337.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cyclic.rs crates/workloads/src/embar.rs crates/workloads/src/grid.rs crates/workloads/src/matmul.rs crates/workloads/src/mgrid.rs crates/workloads/src/poisson.rs crates/workloads/src/registry.rs crates/workloads/src/sort.rs crates/workloads/src/sparse.rs crates/workloads/src/util.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cyclic.rs:
crates/workloads/src/embar.rs:
crates/workloads/src/grid.rs:
crates/workloads/src/matmul.rs:
crates/workloads/src/mgrid.rs:
crates/workloads/src/poisson.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/sparse.rs:
crates/workloads/src/util.rs:
