/root/repo/target/debug/deps/engine_properties-13dfce6b147f1c96.d: crates/sim/tests/engine_properties.rs

/root/repo/target/debug/deps/engine_properties-13dfce6b147f1c96: crates/sim/tests/engine_properties.rs

crates/sim/tests/engine_properties.rs:
