/root/repo/target/debug/deps/fix_roundtrip-0880ad8ed31b24de.d: crates/lint/tests/fix_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libfix_roundtrip-0880ad8ed31b24de.rmeta: crates/lint/tests/fix_roundtrip.rs Cargo.toml

crates/lint/tests/fix_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
