/root/repo/target/debug/deps/extrap_exp-3628f7f0be9fd2d8.d: crates/exp/src/main.rs

/root/repo/target/debug/deps/extrap_exp-3628f7f0be9fd2d8: crates/exp/src/main.rs

crates/exp/src/main.rs:
