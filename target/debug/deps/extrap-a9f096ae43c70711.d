/root/repo/target/debug/deps/extrap-a9f096ae43c70711.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/extrap-a9f096ae43c70711: crates/cli/src/main.rs

crates/cli/src/main.rs:
