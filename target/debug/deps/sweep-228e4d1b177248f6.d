/root/repo/target/debug/deps/sweep-228e4d1b177248f6.d: crates/bench/benches/sweep.rs

/root/repo/target/debug/deps/sweep-228e4d1b177248f6: crates/bench/benches/sweep.rs

crates/bench/benches/sweep.rs:
