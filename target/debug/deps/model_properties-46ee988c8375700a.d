/root/repo/target/debug/deps/model_properties-46ee988c8375700a.d: tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-46ee988c8375700a.rmeta: tests/model_properties.rs Cargo.toml

tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
