/root/repo/target/debug/deps/extrap-4a698d438dd659eb.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/extrap-4a698d438dd659eb: crates/cli/src/main.rs

crates/cli/src/main.rs:
