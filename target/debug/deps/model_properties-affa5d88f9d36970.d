/root/repo/target/debug/deps/model_properties-affa5d88f9d36970.d: tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-affa5d88f9d36970: tests/model_properties.rs

tests/model_properties.rs:
