/root/repo/target/debug/examples/scalability_analysis-80559f084a134459.d: examples/scalability_analysis.rs

/root/repo/target/debug/examples/scalability_analysis-80559f084a134459: examples/scalability_analysis.rs

examples/scalability_analysis.rs:
