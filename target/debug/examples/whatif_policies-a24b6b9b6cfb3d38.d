/root/repo/target/debug/examples/whatif_policies-a24b6b9b6cfb3d38.d: examples/whatif_policies.rs

/root/repo/target/debug/examples/whatif_policies-a24b6b9b6cfb3d38: examples/whatif_policies.rs

examples/whatif_policies.rs:
