/root/repo/target/debug/examples/whatif_policies-71f6d07f0e81a392.d: examples/whatif_policies.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_policies-71f6d07f0e81a392.rmeta: examples/whatif_policies.rs Cargo.toml

examples/whatif_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
