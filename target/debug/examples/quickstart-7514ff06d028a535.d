/root/repo/target/debug/examples/quickstart-7514ff06d028a535.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7514ff06d028a535: examples/quickstart.rs

examples/quickstart.rs:
