/root/repo/target/debug/examples/matmul_distributions-dac63cd12a0e1c12.d: examples/matmul_distributions.rs

/root/repo/target/debug/examples/matmul_distributions-dac63cd12a0e1c12: examples/matmul_distributions.rs

examples/matmul_distributions.rs:
