/root/repo/target/debug/examples/multithreaded_target-d97920688cdb5dae.d: examples/multithreaded_target.rs Cargo.toml

/root/repo/target/debug/examples/libmultithreaded_target-d97920688cdb5dae.rmeta: examples/multithreaded_target.rs Cargo.toml

examples/multithreaded_target.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
