/root/repo/target/debug/examples/print_golden-cb19b958df72e06c.d: crates/workloads/examples/print_golden.rs

/root/repo/target/debug/examples/print_golden-cb19b958df72e06c: crates/workloads/examples/print_golden.rs

crates/workloads/examples/print_golden.rs:
