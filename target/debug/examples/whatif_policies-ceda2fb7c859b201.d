/root/repo/target/debug/examples/whatif_policies-ceda2fb7c859b201.d: examples/whatif_policies.rs

/root/repo/target/debug/examples/whatif_policies-ceda2fb7c859b201: examples/whatif_policies.rs

examples/whatif_policies.rs:
