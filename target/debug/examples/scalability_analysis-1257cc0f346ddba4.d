/root/repo/target/debug/examples/scalability_analysis-1257cc0f346ddba4.d: examples/scalability_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libscalability_analysis-1257cc0f346ddba4.rmeta: examples/scalability_analysis.rs Cargo.toml

examples/scalability_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
