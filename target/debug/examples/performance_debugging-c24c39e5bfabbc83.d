/root/repo/target/debug/examples/performance_debugging-c24c39e5bfabbc83.d: examples/performance_debugging.rs Cargo.toml

/root/repo/target/debug/examples/libperformance_debugging-c24c39e5bfabbc83.rmeta: examples/performance_debugging.rs Cargo.toml

examples/performance_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
