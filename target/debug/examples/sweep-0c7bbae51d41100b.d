/root/repo/target/debug/examples/sweep-0c7bbae51d41100b.d: examples/sweep.rs

/root/repo/target/debug/examples/sweep-0c7bbae51d41100b: examples/sweep.rs

examples/sweep.rs:
