/root/repo/target/debug/examples/clustered_machine-f693961ba45223bb.d: examples/clustered_machine.rs

/root/repo/target/debug/examples/clustered_machine-f693961ba45223bb: examples/clustered_machine.rs

examples/clustered_machine.rs:
