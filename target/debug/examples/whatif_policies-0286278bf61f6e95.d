/root/repo/target/debug/examples/whatif_policies-0286278bf61f6e95.d: examples/whatif_policies.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_policies-0286278bf61f6e95.rmeta: examples/whatif_policies.rs Cargo.toml

examples/whatif_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
