/root/repo/target/debug/examples/matmul_distributions-f8a899c28c50d5fb.d: examples/matmul_distributions.rs Cargo.toml

/root/repo/target/debug/examples/libmatmul_distributions-f8a899c28c50d5fb.rmeta: examples/matmul_distributions.rs Cargo.toml

examples/matmul_distributions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
