/root/repo/target/debug/examples/performance_debugging-cb8d074a5500256b.d: examples/performance_debugging.rs

/root/repo/target/debug/examples/performance_debugging-cb8d074a5500256b: examples/performance_debugging.rs

examples/performance_debugging.rs:
