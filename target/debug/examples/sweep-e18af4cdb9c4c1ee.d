/root/repo/target/debug/examples/sweep-e18af4cdb9c4c1ee.d: examples/sweep.rs

/root/repo/target/debug/examples/sweep-e18af4cdb9c4c1ee: examples/sweep.rs

examples/sweep.rs:
