/root/repo/target/debug/examples/quickstart-460ccbd49b0a7078.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-460ccbd49b0a7078.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
