/root/repo/target/debug/examples/multithreaded_target-9dbf4ccea2ed3e4f.d: examples/multithreaded_target.rs

/root/repo/target/debug/examples/multithreaded_target-9dbf4ccea2ed3e4f: examples/multithreaded_target.rs

examples/multithreaded_target.rs:
