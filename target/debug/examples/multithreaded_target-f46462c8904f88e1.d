/root/repo/target/debug/examples/multithreaded_target-f46462c8904f88e1.d: examples/multithreaded_target.rs Cargo.toml

/root/repo/target/debug/examples/libmultithreaded_target-f46462c8904f88e1.rmeta: examples/multithreaded_target.rs Cargo.toml

examples/multithreaded_target.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
