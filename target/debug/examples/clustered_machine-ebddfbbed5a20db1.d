/root/repo/target/debug/examples/clustered_machine-ebddfbbed5a20db1.d: examples/clustered_machine.rs Cargo.toml

/root/repo/target/debug/examples/libclustered_machine-ebddfbbed5a20db1.rmeta: examples/clustered_machine.rs Cargo.toml

examples/clustered_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
