/root/repo/target/debug/examples/matmul_distributions-1d0fd1c845fac497.d: examples/matmul_distributions.rs Cargo.toml

/root/repo/target/debug/examples/libmatmul_distributions-1d0fd1c845fac497.rmeta: examples/matmul_distributions.rs Cargo.toml

examples/matmul_distributions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
