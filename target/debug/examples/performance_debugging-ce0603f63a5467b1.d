/root/repo/target/debug/examples/performance_debugging-ce0603f63a5467b1.d: examples/performance_debugging.rs

/root/repo/target/debug/examples/performance_debugging-ce0603f63a5467b1: examples/performance_debugging.rs

examples/performance_debugging.rs:
