/root/repo/target/debug/examples/scalability_analysis-d333c4ea84019c57.d: examples/scalability_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libscalability_analysis-d333c4ea84019c57.rmeta: examples/scalability_analysis.rs Cargo.toml

examples/scalability_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
