/root/repo/target/debug/examples/quickstart-f170dc736e580ac0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f170dc736e580ac0: examples/quickstart.rs

examples/quickstart.rs:
