/root/repo/target/debug/examples/scalability_analysis-6df696f8ce172868.d: examples/scalability_analysis.rs

/root/repo/target/debug/examples/scalability_analysis-6df696f8ce172868: examples/scalability_analysis.rs

examples/scalability_analysis.rs:
