/root/repo/target/debug/examples/dbg_fix-d6062fd18997a5a2.d: crates/lint/examples/dbg_fix.rs

/root/repo/target/debug/examples/dbg_fix-d6062fd18997a5a2: crates/lint/examples/dbg_fix.rs

crates/lint/examples/dbg_fix.rs:
