/root/repo/target/debug/examples/print_golden-048f7812015996ff.d: crates/workloads/examples/print_golden.rs Cargo.toml

/root/repo/target/debug/examples/libprint_golden-048f7812015996ff.rmeta: crates/workloads/examples/print_golden.rs Cargo.toml

crates/workloads/examples/print_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
