/root/repo/target/debug/examples/matmul_distributions-fb6be6790f4c053e.d: examples/matmul_distributions.rs

/root/repo/target/debug/examples/matmul_distributions-fb6be6790f4c053e: examples/matmul_distributions.rs

examples/matmul_distributions.rs:
