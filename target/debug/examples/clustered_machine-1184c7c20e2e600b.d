/root/repo/target/debug/examples/clustered_machine-1184c7c20e2e600b.d: examples/clustered_machine.rs

/root/repo/target/debug/examples/clustered_machine-1184c7c20e2e600b: examples/clustered_machine.rs

examples/clustered_machine.rs:
