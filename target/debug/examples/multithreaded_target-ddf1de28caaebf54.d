/root/repo/target/debug/examples/multithreaded_target-ddf1de28caaebf54.d: examples/multithreaded_target.rs

/root/repo/target/debug/examples/multithreaded_target-ddf1de28caaebf54: examples/multithreaded_target.rs

examples/multithreaded_target.rs:
