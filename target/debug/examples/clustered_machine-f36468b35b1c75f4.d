/root/repo/target/debug/examples/clustered_machine-f36468b35b1c75f4.d: examples/clustered_machine.rs Cargo.toml

/root/repo/target/debug/examples/libclustered_machine-f36468b35b1c75f4.rmeta: examples/clustered_machine.rs Cargo.toml

examples/clustered_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
