/root/repo/target/debug/examples/sweep-5506e7cc912286cb.d: examples/sweep.rs Cargo.toml

/root/repo/target/debug/examples/libsweep-5506e7cc912286cb.rmeta: examples/sweep.rs Cargo.toml

examples/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
