/root/repo/target/debug/examples/performance_debugging-28853cde1a399ca7.d: examples/performance_debugging.rs Cargo.toml

/root/repo/target/debug/examples/libperformance_debugging-28853cde1a399ca7.rmeta: examples/performance_debugging.rs Cargo.toml

examples/performance_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
