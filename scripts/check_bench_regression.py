#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Usage: check_bench_regression.py BASELINE.json FRESH.json [MAX_RATIO]

Both files are the `--json` output of the extrap-bench harness.  The
check fails (exit 1) if any benchmark present in both files has a fresh
median more than MAX_RATIO times the baseline median (default 2.0 — wide
enough to absorb machine differences between the baseline host and CI,
tight enough to catch algorithmic regressions), or if any baseline
benchmark is missing from the fresh run — a silently dropped or renamed
bench would otherwise lose its regression coverage without anyone
noticing; renames must update the committed baseline in the same
commit.  Benchmarks that appear only in the fresh run are reported but
never fail the check, so adding benches stays cheap.
"""

import json
import sys


class BenchFileError(Exception):
    """A bench JSON file that cannot be compared (missing/malformed/empty)."""


def medians(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        raise BenchFileError(f"{path}: cannot read bench JSON: {e.strerror or e}")
    except json.JSONDecodeError as e:
        raise BenchFileError(f"{path}: not valid JSON ({e}); was the bench run interrupted?")
    if not isinstance(doc, dict) or "benches" not in doc:
        raise BenchFileError(f"{path}: no top-level \"benches\" array; not bench-harness output")
    benches = doc["benches"]
    if not isinstance(benches, list) or not benches:
        raise BenchFileError(
            f"{path}: \"benches\" is empty; the run produced no results, so the "
            "regression gate has nothing to compare (this is a failure, not a pass)"
        )
    out = {}
    for i, b in enumerate(benches):
        try:
            out[b["name"]] = float(b["median_ns"])
        except (TypeError, KeyError, ValueError):
            raise BenchFileError(
                f"{path}: benches[{i}] lacks a usable name/median_ns pair: {b!r}"
            )
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, fresh_path = argv[1], argv[2]
    try:
        max_ratio = float(argv[3]) if len(argv) > 3 else 2.0
    except ValueError:
        print(f"MAX_RATIO must be a number, got {argv[3]!r}", file=sys.stderr)
        return 2

    try:
        baseline = medians(baseline_path)
        fresh = medians(fresh_path)
    except BenchFileError as e:
        print(f"bench regression check cannot run: {e}", file=sys.stderr)
        return 2

    failed = []
    missing = []
    for name in sorted(baseline.keys() | fresh.keys()):
        if name not in baseline:
            print(f"NEW      {name}: {fresh[name]:,.0f} ns (no baseline)")
            continue
        if name not in fresh:
            print(f"MISSING  {name}: in baseline but not in fresh run")
            missing.append(name)
            continue
        ratio = fresh[name] / baseline[name]
        verdict = "FAIL" if ratio > max_ratio else "ok"
        print(
            f"{verdict:8} {name}: {baseline[name]:,.0f} ns -> "
            f"{fresh[name]:,.0f} ns ({ratio:.2f}x)"
        )
        if ratio > max_ratio:
            failed.append((name, ratio))

    if missing:
        print(
            f"\n{len(missing)} baseline benchmark(s) missing from the fresh "
            "run (renamed or dropped? update the committed baseline):",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  {name}", file=sys.stderr)
    if failed:
        print(
            f"\n{len(failed)} benchmark(s) regressed beyond {max_ratio:.1f}x:",
            file=sys.stderr,
        )
        for name, ratio in failed:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
    if missing or failed:
        return 1
    print(f"\nall baseline benchmarks present and within {max_ratio:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
