#!/usr/bin/env python3
"""Forbid raw std::sync lock primitives outside the pcpp runtime.

Usage: check_sync_imports.py [ROOT]

Every Mutex/Condvar/RwLock in the workspace must come from
`pcpp_rt::sync` so the extrap-check model checker can interpose on it
(the `model-check` feature swaps in checked implementations).  A stray
`std::sync::Mutex` compiles fine but is invisible to the checker, so
the schedule explorer would silently under-approximate the state space.
This lint fails (exit 1) on any use of std::sync::{Mutex, Condvar,
RwLock} — via `use` import, brace group, or fully-qualified path — in
any .rs file under crates/, except the two files that implement the
interposition layer itself (pcpp's sync.rs and chk.rs).

Arc, atomics, mpsc, Once, and the rest of std::sync remain fine
anywhere: they carry no blocking semantics the checker needs to model.
"""

import re
import sys
from pathlib import Path

FORBIDDEN = ("Mutex", "Condvar", "RwLock")

# Files allowed to touch std::sync locks: the wrapper that routes them
# and the checker runtime that replaces them.
ALLOWLIST = {
    Path("crates/pcpp/src/sync.rs"),
    Path("crates/pcpp/src/chk.rs"),
}

# `std::sync::Mutex` / `std :: sync :: Mutex` fully-qualified, where the
# final segment is one of the lock types (word-bounded so MutexGuard via
# sync::MutexGuard still counts — it is part of the same lock API).
QUALIFIED = re.compile(
    r"\bstd\s*::\s*sync\s*::\s*(Mutex|Condvar|RwLock)\b"
)

# `use std::sync::{...}` brace groups, possibly nested or multi-line by
# the time rustfmt is done with them; we match the whole use item.
USE_ITEM = re.compile(r"\buse\s+std\s*::\s*sync\s*::\s*\{([^}]*)\}", re.DOTALL)
NAME_IN_GROUP = re.compile(r"\b(Mutex|Condvar|RwLock)\b")


def strip_comments(text):
    """Drop // line comments and /* */ blocks so commented-out imports
    (e.g. migration notes) don't trip the lint.  String literals are not
    parsed; a forbidden path inside a string is vanishingly unlikely in
    this codebase and a false positive there is cheap to fix."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def offenders_in(text):
    hits = set()
    for m in USE_ITEM.finditer(text):
        hits.update(NAME_IN_GROUP.findall(m.group(1)))
    for m in QUALIFIED.finditer(text):
        hits.add(m.group(1))
    return sorted(hits)


def main(argv):
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    crates = root / "crates"
    if not crates.is_dir():
        print(f"check_sync_imports: no crates/ directory under {root}", file=sys.stderr)
        return 2

    bad = []
    for path in sorted(crates.rglob("*.rs")):
        rel = path.relative_to(root)
        if rel in ALLOWLIST:
            continue
        text = strip_comments(path.read_text(encoding="utf-8"))
        names = offenders_in(text)
        if names:
            bad.append((rel, names))

    if bad:
        print(
            "std::sync lock primitives found outside pcpp_rt::sync "
            "(route them through pcpp_rt::sync so extrap-check can "
            "interpose):",
            file=sys.stderr,
        )
        for rel, names in bad:
            print(f"  {rel}: {', '.join(names)}", file=sys.stderr)
        return 1
    print("sync-imports lint: no raw std::sync lock usage outside pcpp_rt")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
