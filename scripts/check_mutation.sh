#!/usr/bin/env bash
# Seeded-mutation gate for the extrap-check model checker.
#
# Removes the `work_cv.notify_one()` wakeup from JobTable::admit — a
# classic lost-wakeup bug — rebuilds, and asserts that the job-table
# scenario FAILS under `extrap check`.  If the checker still reports
# "ok" against the mutant, the checker itself has regressed (its
# schedule exploration no longer reaches the interleaving where the
# worker parks before the submit), and this script exits 1.
#
# The original source is restored from a byte copy on every exit path
# (trap), never from git, so the gate is safe to run with uncommitted
# changes in the tree.
#
# Usage: scripts/check_mutation.sh [SCHEDULES] [SEED]

set -u

SCHEDULES="${1:-200}"
SEED="${2:-1}"
TARGET="crates/serve/src/state.rs"
MUTATION_LINE='        self.service.work_cv.notify_one();'

cd "$(dirname "$0")/.."

if ! grep -qxF "$MUTATION_LINE" "$TARGET"; then
  echo "check_mutation: mutation site not found in $TARGET" >&2
  echo "  expected line: '$MUTATION_LINE'" >&2
  echo "  (admit() changed? update this script alongside it)" >&2
  exit 2
fi

BACKUP="$(mktemp)"
cp "$TARGET" "$BACKUP"
restore() {
  cp "$BACKUP" "$TARGET"
  rm -f "$BACKUP"
}
trap restore EXIT

# Apply the mutation: drop the post-admit worker wakeup.
python3 - "$TARGET" <<'EOF'
import sys
path = sys.argv[1]
src = open(path).read()
needle = "        self.service.work_cv.notify_one();\n"
assert src.count(needle) == 1, f"expected exactly one mutation site, found {src.count(needle)}"
open(path, "w").write(src.replace(needle, "        // MUTATION: notify_one removed\n"))
EOF

echo "== building mutant =="
if ! cargo build -p extrap-cli --quiet; then
  echo "check_mutation: mutant failed to BUILD (the mutation should only change behavior)" >&2
  exit 2
fi

echo "== model-checking the mutant (job-table, $SCHEDULES schedules, seed $SEED) =="
if ./target/debug/extrap check --scenario job-table --schedules "$SCHEDULES" --seed "$SEED"; then
  echo "check_mutation: FAIL — the checker did not catch the removed notify_one" >&2
  exit 1
fi

echo "== mutation caught; restoring and rebuilding pristine binary =="
restore
trap - EXIT
if ! cargo build -p extrap-cli --quiet; then
  echo "check_mutation: rebuild of pristine tree failed" >&2
  exit 2
fi
if ! ./target/debug/extrap check --scenario job-table --schedules "$SCHEDULES" --seed "$SEED"; then
  echo "check_mutation: pristine code failed the job-table check — real bug?" >&2
  exit 1
fi
echo "check_mutation: ok (mutant caught, pristine passes)"
